"""Unit and property tests for the n-stream workload generator."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.tuple import Tuple
from repro.workloads.nary import (
    NaryWorkloadSpec,
    generate_nary_workload,
)


def stream_is_valid(schedule, schema) -> bool:
    """No tuple matches an earlier punctuation of the same stream."""
    key_index = schema.index_of("key")
    punctuated = set()
    for _t, item in schedule:
        if isinstance(item, Punctuation):
            punctuated.add(item.patterns[key_index])
        elif isinstance(item, Tuple):
            key = item.values[key_index]
            if any(p.matches(key) for p in punctuated):
                return False
    return True


class TestBasicShape:
    def test_tuple_counts_match_spec(self):
        workload = generate_nary_workload(
            n_streams=3, n_tuples_per_stream=300, seed=1
        )
        for side in range(3):
            assert len(workload.tuples(side)) == 300

    def test_schedules_are_time_ordered(self):
        workload = generate_nary_workload(
            n_streams=4, n_tuples_per_stream=200,
            punct_spacings=(10.0, 20.0, 30.0, 40.0), seed=2,
        )
        for schedule in workload.schedules:
            times = [t for t, _ in schedule]
            assert times == sorted(times)

    def test_stream_names_and_join_fields(self):
        workload = generate_nary_workload(
            n_streams=3, n_tuples_per_stream=50, seed=3
        )
        assert workload.stream_names == ("S0", "S1", "S2")
        assert workload.join_fields == ("key", "key", "key")

    def test_none_spacing_disables_punctuations(self):
        workload = generate_nary_workload(
            n_streams=3, n_tuples_per_stream=200,
            punct_spacings=(10.0, None, 10.0), seed=4,
        )
        assert workload.punctuations(0)
        assert not workload.punctuations(1)
        assert workload.punctuations(2)

    def test_end_time_is_the_latest_event(self):
        workload = generate_nary_workload(
            n_streams=2, n_tuples_per_stream=100,
            punct_spacings=(10.0, 10.0), seed=5,
        )
        latest = max(s[-1][0] for s in workload.schedules if s)
        assert workload.end_time == latest

    def test_same_seed_reproduces_the_workload(self):
        spec = NaryWorkloadSpec(n_tuples_per_stream=150, seed=9)
        a = generate_nary_workload(spec)
        b = generate_nary_workload(spec)
        for sa, sb in zip(a.schedules, b.schedules):
            assert [(t, repr(i)) for t, i in sa] == [
                (t, repr(i)) for t, i in sb
            ]


class TestValidity:
    @settings(max_examples=10, deadline=None)
    @given(
        n_streams=st.integers(2, 4),
        n_tuples=st.integers(50, 200),
        active_values=st.integers(1, 10),
        seed=st.integers(0, 10_000),
    )
    def test_every_stream_is_valid(
        self, n_streams, n_tuples, active_values, seed
    ):
        workload = generate_nary_workload(
            n_streams=n_streams,
            n_tuples_per_stream=n_tuples,
            punct_spacings=tuple([7.0] * n_streams),
            active_values=active_values,
            seed=seed,
        )
        for side, schedule in enumerate(workload.schedules):
            assert stream_is_valid(schedule, workload.schemas[side])

    def test_valid_under_both_drifts(self):
        workload = generate_nary_workload(
            n_streams=3, n_tuples_per_stream=600,
            interarrival_ms=(1.0, 4.0, 1.0),
            drift_interarrival_ms=(1.0, 1.0, 4.0),
            punct_spacings=(5.0, 20.0, 40.0),
            drift_spacings=(5.0, 40.0, 20.0),
            drift_at=0.5, seed=6,
        )
        for side, schedule in enumerate(workload.schedules):
            assert stream_is_valid(schedule, workload.schemas[side])


class TestDrift:
    def test_interarrival_drift_changes_the_gap(self):
        workload = generate_nary_workload(
            n_streams=2, n_tuples_per_stream=2000,
            interarrival_ms=(1.0, 1.0),
            drift_interarrival_ms=(8.0, 1.0),
            punct_spacings=(None, None),
            drift_at=0.5, seed=7,
        )
        times = [t for t, _ in workload.schedules[0]]
        gaps = [b - a for a, b in zip(times, times[1:])]
        half = len(gaps) // 2
        early, late = statistics.mean(gaps[:half]), statistics.mean(gaps[half:])
        assert late > 4 * early  # 1 ms -> 8 ms mean inter-arrival

    def test_spacing_drift_changes_punctuation_cadence(self):
        workload = generate_nary_workload(
            n_streams=2, n_tuples_per_stream=4000,
            punct_spacings=(5.0, 5.0),
            drift_spacings=(80.0, 5.0),
            drift_at=0.5, seed=8,
        )
        tuples = workload.tuples(0)
        mid_ts = tuples[len(tuples) // 2].ts
        puncts = workload.punctuations(0)
        early = sum(1 for p in puncts if p.ts <= mid_ts)
        late = len(puncts) - early
        assert early > 4 * late


class TestSpecValidation:
    def test_needs_two_streams(self):
        with pytest.raises(WorkloadError):
            NaryWorkloadSpec(n_streams=1, punct_spacings=(10.0,))

    def test_spacings_must_match_stream_count(self):
        with pytest.raises(WorkloadError):
            NaryWorkloadSpec(n_streams=3, punct_spacings=(10.0, 10.0))

    def test_interarrival_must_match_stream_count(self):
        with pytest.raises(WorkloadError):
            NaryWorkloadSpec(n_streams=3, interarrival_ms=(1.0, 1.0))

    def test_interarrival_must_be_positive(self):
        with pytest.raises(WorkloadError):
            NaryWorkloadSpec(n_streams=2, punct_spacings=(10.0, 10.0),
                             interarrival_ms=(1.0, 0.0))

    def test_drift_interarrival_validated_like_interarrival(self):
        with pytest.raises(WorkloadError):
            NaryWorkloadSpec(n_streams=2, punct_spacings=(10.0, 10.0),
                             drift_interarrival_ms=(-1.0, 1.0))

    def test_drift_at_must_be_a_fraction(self):
        with pytest.raises(WorkloadError):
            NaryWorkloadSpec(drift_at=1.5)

    def test_with_overrides_returns_a_new_spec(self):
        spec = NaryWorkloadSpec(seed=1)
        other = spec.with_overrides(seed=2)
        assert spec.seed == 1 and other.seed == 2
