"""The Zipf key draw and hot-set rotation of the stream generator.

The skew knobs must be *additive*: a spec with ``zipf_exponent=None``
takes the pre-skew uniform code path (same RNG call sequence, so every
committed golden stays byte-identical), and a Zipf spec still honours
stream validity — no key is ever emitted after its punctuation.
"""

from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload
from repro.workloads.spec import WorkloadSpec


def key_counts(workload, stream=0):
    return Counter(t.values[0] for t in workload.tuples(stream))


class TestSpecValidation:
    def test_negative_exponent_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(zipf_exponent=-0.5)

    def test_zero_exponent_is_legal_uniform(self):
        assert WorkloadSpec(zipf_exponent=0.0).zipf_exponent == 0.0

    def test_rotation_requires_zipf(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(hot_set_rotate_every=100)

    def test_rotation_cadence_at_least_one(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(zipf_exponent=1.0, hot_set_rotate_every=0)


class TestZipfDraw:
    def test_deterministic_for_equal_seeds(self):
        a = generate_workload(n_tuples_per_stream=400, zipf_exponent=1.2,
                              seed=9)
        b = generate_workload(n_tuples_per_stream=400, zipf_exponent=1.2,
                              seed=9)
        assert [t.values for t in a.tuples(0)] == \
            [t.values for t in b.tuples(0)]

    def test_high_exponent_concentrates_mass(self):
        # No punctuations: the open window never slides, so rank 0 is
        # one fixed key and the concentration shows up per absolute key.
        uniform = generate_workload(
            n_tuples_per_stream=3000, active_values=32, seed=4,
            punct_spacing_a=None, punct_spacing_b=None,
        )
        skewed = generate_workload(
            n_tuples_per_stream=3000, active_values=32, zipf_exponent=1.5,
            seed=4, punct_spacing_a=None, punct_spacing_b=None,
        )
        top_uniform = key_counts(uniform).most_common(1)[0][1]
        top_skewed = key_counts(skewed).most_common(1)[0][1]
        assert top_skewed > 3 * top_uniform

    def test_none_exponent_matches_the_uniform_path_exactly(self):
        """zipf_exponent=None must not perturb the RNG call sequence."""
        plain = generate_workload(n_tuples_per_stream=400, seed=11)
        nulled = generate_workload(
            WorkloadSpec(n_tuples_per_stream=400, seed=11,
                         zipf_exponent=None)
        )
        for stream in (0, 1):
            assert [(t.values, t.ts) for t in plain.tuples(stream)] == \
                [(t.values, t.ts) for t in nulled.tuples(stream)]

    def test_streams_stay_valid_under_zipf(self):
        workload = generate_workload(
            n_tuples_per_stream=1000, punct_spacing_a=25, punct_spacing_b=25,
            zipf_exponent=1.4, seed=3,
        )
        for stream in (0, 1):
            punctuated = []
            for _ts, item in workload.schedules[stream]:
                if isinstance(item, Punctuation):
                    punctuated.append(item.patterns[0])
                elif isinstance(item, Tuple):
                    assert not any(
                        p.matches(item.values[0]) for p in punctuated
                    )


class TestHotSetRotation:
    def test_rotation_moves_the_hot_key(self):
        still = generate_workload(
            n_tuples_per_stream=2000, active_values=64, zipf_exponent=1.5,
            seed=6,
        )
        rotated = generate_workload(
            n_tuples_per_stream=2000, active_values=64, zipf_exponent=1.5,
            hot_set_rotate_every=200, seed=6,
        )
        # Rotation spreads the head of the distribution over more keys:
        # the single hottest key loses mass against the unrotated run.
        assert key_counts(rotated).most_common(1)[0][1] < \
            key_counts(still).most_common(1)[0][1]
