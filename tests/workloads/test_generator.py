"""Unit and property tests for the punctuated-stream generator.

The critical property is *stream validity*: once a stream has emitted a
punctuation for a key, it must never emit a tuple with that key again —
PJoin's purge/drop soundness is built on that promise.
"""

from hypothesis import given, settings, strategies as st

from repro.punctuations.punctuation import Punctuation
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload
from repro.workloads.spec import WorkloadSpec


def stream_is_valid(schedule, schema) -> bool:
    """No tuple matches an earlier punctuation of the same stream."""
    key_index = schema.index_of("key")
    punctuated = set()
    for _t, item in schedule:
        if isinstance(item, Punctuation):
            pattern = item.patterns[key_index]
            punctuated.add(pattern)
        elif isinstance(item, Tuple):
            key = item.values[key_index]
            if any(p.matches(key) for p in punctuated):
                return False
    return True


class TestBasicProperties:
    def test_tuple_counts_match_spec(self):
        workload = generate_workload(n_tuples_per_stream=500, seed=1)
        assert len(workload.tuples(0)) == 500
        assert len(workload.tuples(1)) == 500

    def test_schedules_are_time_ordered(self):
        workload = generate_workload(n_tuples_per_stream=500, seed=1)
        for schedule in workload.schedules:
            times = [t for t, _ in schedule]
            assert times == sorted(times)

    def test_punctuation_count_roughly_matches_spacing(self):
        workload = generate_workload(
            n_tuples_per_stream=4000, punct_spacing_a=10, punct_spacing_b=40, seed=2
        )
        assert 320 <= len(workload.punctuations(0)) <= 480
        assert 70 <= len(workload.punctuations(1)) <= 130

    def test_none_spacing_yields_no_punctuations(self):
        workload = generate_workload(
            n_tuples_per_stream=500, punct_spacing_a=None, punct_spacing_b=None,
            seed=1,
        )
        assert workload.punctuations(0) == []
        assert workload.punctuations(1) == []

    def test_deterministic_for_equal_seeds(self):
        a = generate_workload(n_tuples_per_stream=300, seed=7)
        b = generate_workload(n_tuples_per_stream=300, seed=7)
        assert [(t, i.values) for t, i in a.schedule_a if isinstance(i, Tuple)] == [
            (t, i.values) for t, i in b.schedule_a if isinstance(i, Tuple)
        ]

    def test_different_seeds_differ(self):
        a = generate_workload(n_tuples_per_stream=300, seed=7)
        b = generate_workload(n_tuples_per_stream=300, seed=8)
        assert [t.values for t in a.tuples(0)] != [t.values for t in b.tuples(0)]

    def test_streams_share_keys(self):
        workload = generate_workload(n_tuples_per_stream=500, seed=1)
        keys_a = {t["key"] for t in workload.tuples(0)}
        keys_b = {t["key"] for t in workload.tuples(1)}
        assert keys_a & keys_b

    def test_aligned_punctuations_same_order(self):
        workload = generate_workload(
            n_tuples_per_stream=2000,
            punct_spacing_a=40,
            punct_spacing_b=40,
            aligned_punctuations=True,
            seed=3,
        )
        keys_a = [p.pattern_for("key").value for p in workload.punctuations(0)]
        keys_b = [p.pattern_for("key").value for p in workload.punctuations(1)]
        shared = min(len(keys_a), len(keys_b))
        assert keys_a[:shared] == keys_b[:shared] == list(range(shared))

    def test_end_time_is_last_item_time(self):
        workload = generate_workload(n_tuples_per_stream=100, seed=1)
        expected = max(workload.schedule_a[-1][0], workload.schedule_b[-1][0])
        assert workload.end_time == expected


class TestValidity:
    def test_streams_are_valid_default_spec(self):
        workload = generate_workload(n_tuples_per_stream=2000, seed=5)
        for side in (0, 1):
            assert stream_is_valid(workload.schedules[side], workload.schemas[side])

    @settings(max_examples=15, deadline=None)
    @given(
        spacing_a=st.one_of(st.none(), st.integers(2, 60)),
        spacing_b=st.one_of(st.none(), st.integers(2, 60)),
        active=st.integers(1, 25),
        seed=st.integers(0, 10_000),
    )
    def test_streams_are_valid_for_any_spec(self, spacing_a, spacing_b, active, seed):
        spec = WorkloadSpec(
            n_tuples_per_stream=400,
            punct_spacing_a=spacing_a,
            punct_spacing_b=spacing_b,
            active_values=active,
            seed=seed,
        )
        workload = generate_workload(spec)
        for side in (0, 1):
            assert stream_is_valid(workload.schedules[side], workload.schemas[side])
