"""Unit tests for the sensor workload."""

import pytest

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.tuple import Tuple
from repro.workloads.sensors import SensorSpec, SensorWorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    spec = SensorSpec(n_epochs=10, n_sensors=5, seed=2)
    return spec, SensorWorkloadGenerator(spec).generate()


def test_validation():
    with pytest.raises(WorkloadError):
        SensorSpec(n_epochs=0)
    with pytest.raises(WorkloadError):
        SensorSpec(epoch_length_ms=0)


def test_every_sensor_reports_every_epoch(workload):
    spec, (readings, _queries) = workload
    tuples = [i for _t, i in readings if isinstance(i, Tuple)]
    assert len(tuples) == spec.n_epochs * spec.n_sensors


def test_one_punctuation_per_epoch_per_stream(workload):
    spec, (readings, queries) = workload
    for schedule in (readings, queries):
        puncts = [i for _t, i in schedule if isinstance(i, Punctuation)]
        assert len(puncts) == spec.n_epochs


def test_readings_precede_their_epoch_punctuation(workload):
    _spec, (readings, _queries) = workload
    closed = set()
    for _t, item in readings:
        if isinstance(item, Punctuation):
            closed.add(item.pattern_for("epoch").value)
        else:
            assert item["epoch"] not in closed


def test_schedules_time_ordered(workload):
    _spec, schedules = workload
    for schedule in schedules:
        times = [t for t, _ in schedule]
        assert times == sorted(times)
