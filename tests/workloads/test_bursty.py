"""Unit tests for the bursty re-timing."""

import pytest

from repro.errors import WorkloadError
from repro.tuples.tuple import Tuple
from repro.workloads.bursty import make_bursty
from repro.workloads.generator import generate_workload


@pytest.fixture(scope="module")
def smooth():
    return generate_workload(
        n_tuples_per_stream=600, punct_spacing_a=15, punct_spacing_b=15, seed=2
    )


def test_validation(smooth):
    with pytest.raises(WorkloadError):
        make_bursty(smooth, burst_ms=0)
    with pytest.raises(WorkloadError):
        make_bursty(smooth, compress=0)
    with pytest.raises(WorkloadError):
        make_bursty(smooth, compress=1.5)


def test_item_order_and_content_preserved(smooth):
    bursty = make_bursty(smooth)
    for side in (0, 1):
        original = [t.values for t in smooth.tuples(side)]
        remapped = [t.values for t in bursty.tuples(side)]
        assert original == remapped
        assert len(smooth.punctuations(side)) == len(bursty.punctuations(side))


def test_times_are_monotone(smooth):
    bursty = make_bursty(smooth)
    for schedule in bursty.schedules:
        times = [t for t, _ in schedule]
        assert times == sorted(times)


def test_timestamps_follow_schedule_times(smooth):
    bursty = make_bursty(smooth)
    for t, item in bursty.schedule_a:
        if isinstance(item, Tuple):
            assert item.ts == t


def test_silences_appear(smooth):
    bursty = make_bursty(smooth, burst_ms=100.0, silence_ms=500.0, compress=0.25)
    merged = sorted(
        t for schedule in bursty.schedules for t, _ in schedule
    )
    gaps = [b - a for a, b in zip(merged, merged[1:])]
    assert max(gaps) >= 400.0  # a real silence exists
    # And bursts are denser than the smooth workload (mean gap < 2 ms).
    short_gaps = [g for g in gaps if g < 50.0]
    assert sum(short_gaps) / len(short_gaps) < 1.0


def test_total_duration_extends_by_silences(smooth):
    bursty = make_bursty(smooth, burst_ms=100.0, silence_ms=100.0, compress=0.5)
    assert bursty.end_time > smooth.end_time * 0.5  # compressed + silences
