"""Integration test: a group-by pulling propagation from PJoin.

The paper's pull mode exists for "the down-stream operators, which
would be the beneficiaries of the propagation".  Here the beneficiary
is the group-by: whenever too many of its groups are blocked, it asks
the join to propagate whatever punctuations are ready.
"""

import pytest

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.errors import OperatorError
from repro.operators.groupby import GroupBy, sum_agg
from repro.operators.sink import Sink
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.auction import (
    BID_SCHEMA,
    OPEN_SCHEMA,
    AuctionSpec,
    AuctionWorkloadGenerator,
)


def build(pull_threshold):
    spec = AuctionSpec(n_items=80, auction_duration_ms=80.0, seed=17)
    open_schedule, bid_schedule = AuctionWorkloadGenerator(spec).generate()
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    join = PJoin(
        plan.engine, plan.cost_model, OPEN_SCHEMA, BID_SCHEMA,
        "item_id", "item_id",
        config=PJoinConfig(
            purge_threshold=1, index_building="eager", propagation_mode="pull"
        ),
    )
    groupby = GroupBy(
        plan.engine, plan.cost_model, join.out_schema, "Open.item_id",
        [sum_agg("bid_increase", "total")],
        pull_from=join,
        pull_open_groups_threshold=pull_threshold,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(groupby)
    groupby.connect(sink)
    plan.add_source(open_schedule, join, port=0)
    plan.add_source(bid_schedule, join, port=1)
    return plan, join, groupby, sink


def test_pull_threshold_validated(engine, cheap_cost_model):
    from repro.tuples.schema import Schema

    with pytest.raises(OperatorError):
        GroupBy(
            engine, cheap_cost_model, Schema.of("k", "v"), "k",
            [sum_agg("v")], pull_open_groups_threshold=0,
        )


def test_groupby_pulls_and_gets_unblocked():
    plan, join, groupby, sink = build(pull_threshold=4)
    plan.run()
    assert groupby.pull_requests_sent > 0
    assert join.punctuations_propagated > 0
    # Pulling kept the blocked-group count near the threshold: results
    # streamed out before end-of-stream.
    early = sum(1 for t in sink.tuple_arrival_times if t < sink.eos_time)
    assert early > 0.5 * sink.tuple_count


def test_without_pulling_groupby_stays_blocked():
    plan, join, groupby, sink = build(pull_threshold=10_000)
    plan.run()
    assert groupby.pull_requests_sent == 0
    # Nobody pulled, so punctuations were released only by the join's
    # end-of-stream flush: every group result lands in the final moments.
    assert all(t >= 0.95 * sink.eos_time for t in sink.tuple_arrival_times)


def test_pulling_does_not_change_results():
    _plan1, _j1, _g1, sink_pull = build(pull_threshold=4)
    _plan1.run()
    _plan2, _j2, _g2, sink_lazy = build(pull_threshold=10_000)
    _plan2.run()
    got_pull = sorted(t.values for t in sink_pull.results)
    got_lazy = sorted(t.values for t in sink_lazy.results)
    assert got_pull == got_lazy
