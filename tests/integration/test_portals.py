"""Integration test: the paper's portal scenario (§1.1).

"The sellers portal merges items for sale submitted by sellers into a
stream called Open" — i.e. a Union sits upstream of PJoin.  The union
may only forward an item's punctuation once *every* seller sub-stream
has promised it; this test builds the full plan and checks that the
join still purges correctly and produces the exact join result.
"""

from collections import Counter

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.sink import Sink
from repro.operators.union import Union
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

OPEN_SCHEMA = Schema.of("item_id", "seller", name="Open")
BID_SCHEMA = Schema.of("item_id", "amount", name="Bid")


def build_portal_schedules():
    """Two seller sub-streams and one bid stream over 20 items.

    Each item is listed by exactly one seller, but *both* sub-streams
    punctuate every item (a seller portal knows which items it will
    never list): the union needs promises from both before forwarding.
    """
    sellers = [[], []]
    bids = []
    t = 0.0
    for item in range(20):
        owner = item % 2
        t += 2.0
        sellers[owner].append(
            (t, Tuple(OPEN_SCHEMA, (item, f"seller{owner}"), ts=t))
        )
        for b in range(3):
            bid_time = t + 0.5 + b
            bids.append(
                (bid_time, Tuple(BID_SCHEMA, (item, 10 + b), ts=bid_time))
            )
        close = t + 5.0
        for sub in sellers:
            sub.append(
                (close, Punctuation.on_field(OPEN_SCHEMA, "item_id", item,
                                             ts=close))
            )
        bids.append(
            (close, Punctuation.on_field(BID_SCHEMA, "item_id", item, ts=close))
        )
    for sub in sellers:
        sub.sort(key=lambda pair: pair[0])
    bids.sort(key=lambda pair: pair[0])
    return sellers, bids


def test_union_feeds_pjoin_with_merged_punctuations():
    sellers, bids = build_portal_schedules()
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    union = Union(plan.engine, plan.cost_model, OPEN_SCHEMA, n_inputs=2)
    join = PJoin(
        plan.engine, plan.cost_model, OPEN_SCHEMA, BID_SCHEMA,
        "item_id", "item_id", config=PJoinConfig(purge_threshold=1),
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    union.connect(join, port=0)
    join.connect(sink)
    plan.add_source(sellers[0], union, port=0, name="seller0")
    plan.add_source(sellers[1], union, port=1, name="seller1")
    plan.add_source(bids, join, port=1, name="bids")
    plan.run()
    # Every item joins its three bids, exactly once.
    expected = Counter()
    for item in range(20):
        for b in range(3):
            expected[(item, f"seller{item % 2}", item, 10 + b)] += 1
    assert Counter(dict(sink.result_multiset())) == expected
    # The union merged each item's promise exactly once ...
    assert union.punctuations_merged == 20
    # ... which let the join purge its Open state down to nothing.
    assert join.state_size(0) == 0
    assert join.tuples_purged > 0


def test_one_portal_lagging_delays_purging_but_not_results():
    """If seller1 never punctuates, the union must hold every promise —
    the join keeps its Open state, but results are still exact."""
    sellers, bids = build_portal_schedules()
    lagging = [
        (t, item)
        for t, item in sellers[1]
        if not isinstance(item, Punctuation)
    ]
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    union = Union(plan.engine, plan.cost_model, OPEN_SCHEMA, n_inputs=2)
    join = PJoin(
        plan.engine, plan.cost_model, OPEN_SCHEMA, BID_SCHEMA,
        "item_id", "item_id", config=PJoinConfig(purge_threshold=1),
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    union.connect(join, port=0)
    join.connect(sink)
    plan.add_source(sellers[0], union, port=0)
    plan.add_source(lagging, union, port=1)
    plan.add_source(bids, join, port=1)
    plan.run()
    assert union.punctuations_merged == 0
    assert union.pending_punctuations == 20
    # The Bid stream still punctuates, so the Open state is purged as
    # before — but with no Open promises reaching the join, the *Bid*
    # state has nothing to purge it and keeps all 60 bids.
    assert join.state_size(0) == 0
    assert join.state_size(1) == 60
    assert sink.tuple_count == 60
