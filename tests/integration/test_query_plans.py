"""Integration tests: full query plans over realistic workloads.

These mirror the paper's Figure 1 (c): equi-join two punctuated streams
with PJoin, feed the output to a punctuation-aware group-by, and check
that propagation unblocks the group-by long before end-of-stream.
"""

from collections import defaultdict

import pytest

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.groupby import GroupBy, sum_agg
from repro.operators.sink import Sink
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.auction import (
    BID_SCHEMA,
    OPEN_SCHEMA,
    AuctionSpec,
    AuctionWorkloadGenerator,
)
from repro.workloads.sensors import SensorSpec, SensorWorkloadGenerator
from repro.tuples.tuple import Tuple


def build_auction_plan(propagation_mode="push_count"):
    """The paper's motivating query: Open ⋈ Bid, grouped by item."""
    spec = AuctionSpec(n_items=60, auction_duration_ms=80.0, seed=11)
    open_schedule, bid_schedule = AuctionWorkloadGenerator(spec).generate()
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    config = PJoinConfig(
        purge_threshold=1,
        index_building="eager",
        propagation_mode=propagation_mode,
        propagate_count_threshold=5,
    )
    join = PJoin(
        plan.engine, plan.cost_model, OPEN_SCHEMA, BID_SCHEMA,
        "item_id", "item_id", config=config,
    )
    groupby = GroupBy(
        plan.engine,
        plan.cost_model,
        join.out_schema,
        "Open.item_id",
        [sum_agg("bid_increase", "total_increase")],
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(groupby)
    groupby.connect(sink)
    plan.add_source(open_schedule, join, port=0, name="Open")
    plan.add_source(bid_schedule, join, port=1, name="Bid")
    return plan, spec, open_schedule, bid_schedule, join, groupby, sink


def expected_totals(bid_schedule):
    totals = defaultdict(float)
    for _t, item in bid_schedule:
        if isinstance(item, Tuple):
            totals[item["item_id"]] += item["bid_increase"]
    return totals


class TestAuctionQuery:
    def test_group_totals_match_direct_computation(self):
        plan, _spec, _opens, bids, _join, _groupby, sink = build_auction_plan()
        plan.run()
        expected = expected_totals(bids)
        got = {
            r["Open.item_id"]: r["total_increase"]
            for r in sink.results
        }
        # Only items with at least one bid appear in the join output.
        assert got == {k: pytest.approx(v) for k, v in expected.items()}

    def test_propagation_unblocks_groupby_before_eos(self):
        plan, _spec, _opens, _bids, join, groupby, sink = build_auction_plan()
        plan.run()
        assert join.punctuations_propagated > 0
        # Most group results were released before end-of-stream.
        early = [t for t in sink.tuple_arrival_times if t < sink.eos_time]
        assert len(early) > 0.5 * sink.tuple_count

    def test_without_propagation_groupby_blocks_until_eos(self):
        plan, _spec, _opens, _bids, join, groupby, sink = build_auction_plan(
            propagation_mode="off"
        )
        plan.run()
        assert join.punctuations_propagated == 0
        # Every group result arrives only at end-of-stream.
        assert all(t >= sink.eos_time for t in sink.tuple_arrival_times)

    def test_join_state_stays_small(self):
        plan, spec, _opens, _bids, join, _groupby, sink = build_auction_plan()
        plan.run()
        # All items closed: nothing left but possibly the tail.
        assert join.total_state_size() < spec.n_items


class TestSensorQuery:
    def test_epoch_join_with_punctuated_retirement(self):
        spec = SensorSpec(n_epochs=30, n_sensors=8, queries_per_epoch=2, seed=5)
        readings, queries = SensorWorkloadGenerator(spec).generate()
        plan = QueryPlan(cost_model=CostModel().scaled(0.01))
        from repro.workloads.sensors import QUERIES_SCHEMA, READINGS_SCHEMA

        join = PJoin(
            plan.engine, plan.cost_model, READINGS_SCHEMA, QUERIES_SCHEMA,
            "epoch", "epoch", config=PJoinConfig(purge_threshold=1),
        )
        sink = Sink(plan.engine, plan.cost_model, keep_items=True)
        join.connect(sink)
        plan.add_source(readings, join, port=0)
        plan.add_source(queries, join, port=1)
        plan.run()
        # Every query joins all of its epoch's readings.
        assert sink.tuple_count == spec.n_epochs * spec.n_sensors * \
            spec.queries_per_epoch
        # Retired epochs left the state.
        assert join.total_state_size() < 3 * spec.n_sensors
