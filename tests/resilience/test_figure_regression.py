"""Default-path regression: resilience must not perturb the figures.

The golden was captured before the resilience layer landed.  Under the
default strict policy with no fault injection, every counter, sample and
check in the figure export must still match it exactly — byte-identical
results are the contract that lets `strict` stay the default.

(Manifest ``config`` sections are excluded: the config schema legitimately
gained the ``fault_policy`` field.)
"""

import json
from pathlib import Path

from repro.experiments.export import figure_to_dict
from repro.experiments.figures import ALL_FIGURES

GOLDEN = Path(__file__).resolve().parents[1] / "goldens" / "figure5_scale005.json"


def test_figure5_unchanged_by_resilience_layer():
    result = ALL_FIGURES["figure5"](scale=0.05)
    exported = figure_to_dict(result)
    for run in exported["runs"]:
        run["manifest"].pop("config", None)

    golden = json.loads(GOLDEN.read_text())
    assert exported == golden
