"""The shared contract validator, policy by policy."""

import pytest

from repro.errors import ContractViolationError, PunctuationError
from repro.punctuations.punctuation import Punctuation
from repro.resilience.validator import ContractValidator
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "payload")


def punct(value, ts=0.0):
    return Punctuation.on_field(SCHEMA, "key", value, ts=ts)


def tup(value, ts=0.0):
    return Tuple(SCHEMA, (value, 0), ts=ts)


@pytest.fixture
def engine():
    return SimulationEngine()


def tracking(engine, policy):
    return ContractValidator.tracking(
        engine, "j", policy, [SCHEMA, SCHEMA], ["key", "key"]
    )


class TestTrust:
    def test_admits_everything_without_tracking(self, validator=None):
        engine = SimulationEngine()
        validator = tracking(engine, "trust")
        validator.observe_punctuation(punct(1), 0)
        assert validator.admit(tup(1), 1, 0) is True
        assert validator.violations == 0
        assert validator.dead_letters is None


class TestStrict:
    def test_raises_on_violation(self, engine):
        validator = tracking(engine, "strict")
        validator.observe_punctuation(punct(1), 0)
        assert validator.admit(tup(2), 2, 0) is True
        with pytest.raises(ContractViolationError, match="after a punctuation"):
            validator.admit(tup(1), 1, 0)
        assert validator.violations == 1

    def test_error_is_also_a_punctuation_error(self, engine):
        # Pre-resilience callers caught PunctuationError; they still do.
        validator = tracking(engine, "strict")
        validator.observe_punctuation(punct(1), 0)
        with pytest.raises(PunctuationError):
            validator.admit(tup(1), 1, 0)

    def test_sides_are_independent(self, engine):
        validator = tracking(engine, "strict")
        validator.observe_punctuation(punct(1), 0)
        # Side 1 made no promise about value 1.
        assert validator.admit(tup(1), 1, 1) is True


class TestQuarantine:
    def test_violation_goes_to_dead_letters(self, engine):
        validator = tracking(engine, "quarantine")
        validator.observe_punctuation(punct(1), 0)
        assert validator.admit(tup(1), 1, 0) is False
        assert validator.violations == 1
        assert validator.quarantined == 1
        assert len(validator.dead_letters) == 1
        assert validator.dead_letters.quarantined_values() == [1]

    def test_clean_tuples_still_admitted(self, engine):
        validator = tracking(engine, "quarantine")
        validator.observe_punctuation(punct(1), 0)
        assert validator.admit(tup(2), 2, 0) is True
        assert len(validator.dead_letters) == 0


class TestRepair:
    def test_violation_retracts_and_admits(self, engine):
        validator = tracking(engine, "repair")
        validator.observe_punctuation(punct(1), 0)
        assert validator.admit(tup(1), 1, 0) is True
        assert validator.punctuations_retracted == 1
        # The promise is gone: the same value no longer violates.
        assert validator.admit(tup(1), 1, 0) is True
        assert validator.violations == 1

    def test_counters_snapshot(self, engine):
        validator = tracking(engine, "repair")
        validator.observe_punctuation(punct(3), 0)
        validator.admit(tup(3), 3, 0)
        assert validator.counters() == {
            "violations": 1,
            "quarantined": 0,
            "punctuations_retracted": 1,
        }


class TestLegacyAliases:
    def test_count_means_quarantine(self, engine):
        assert tracking(engine, "count").policy == "quarantine"

    def test_is_default_strict(self, engine):
        validator = tracking(engine, "strict")
        assert validator.is_default_strict
        assert not tracking(engine, "quarantine").is_default_strict
