"""Every public exception hangs off ReproError; resilience errors slot in."""

import inspect

from repro import errors
from repro.errors import (
    ContractViolationError,
    PunctuationError,
    ReproError,
    ResilienceError,
    SourceStallError,
    StorageError,
    TransientIOError,
)


def public_exception_classes():
    return [
        obj
        for name, obj in vars(errors).items()
        if inspect.isclass(obj)
        and issubclass(obj, Exception)
        and not name.startswith("_")
    ]


def test_every_public_exception_subclasses_repro_error():
    classes = public_exception_classes()
    assert classes, "expected the errors module to export exception classes"
    for cls in classes:
        assert issubclass(cls, ReproError), f"{cls.__name__} escapes ReproError"


def test_catching_repro_error_catches_resilience_failures():
    for cls in (
        ResilienceError,
        ContractViolationError,
        TransientIOError,
        SourceStallError,
    ):
        try:
            raise cls("boom")
        except ReproError:
            pass


def test_contract_violation_is_still_a_punctuation_error():
    # Pre-resilience code caught PunctuationError on contract violations.
    assert issubclass(ContractViolationError, PunctuationError)
    assert issubclass(ContractViolationError, ResilienceError)


def test_transient_io_error_is_still_a_storage_error():
    assert issubclass(TransientIOError, StorageError)
    assert issubclass(TransientIOError, ResilienceError)


def test_source_stall_error_is_a_resilience_error():
    assert issubclass(SourceStallError, ResilienceError)
    assert not issubclass(SourceStallError, StorageError)
