"""The disorder buffer and the transient-disk-fault retry machinery."""

import pytest

from repro.errors import ResilienceError, RetryExhaustedError, TransientIOError
from repro.resilience.disorder import DisorderBuffer
from repro.resilience.retry import (
    DiskFaultProfile,
    RetryPolicy,
    maybe_injector,
)
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key")


def item(ts):
    return Tuple(SCHEMA, (int(ts),), ts=ts)


class TestDisorderBuffer:
    def test_reorders_within_slack(self):
        buf = DisorderBuffer(slack_ms=10.0)
        released = []
        # Items arrive 3, 1, 2 (timestamps) but within 10ms of each other.
        released += buf.push(item(3.0), arrival_ts=3.0)
        released += buf.push(item(1.0), arrival_ts=4.0)
        released += buf.push(item(2.0), arrival_ts=5.0)
        released += buf.flush()
        assert [it.ts for it in released] == [1.0, 2.0, 3.0]
        assert buf.reordered > 0
        assert buf.late_releases == 0

    def test_releases_only_past_watermark(self):
        buf = DisorderBuffer(slack_ms=5.0)
        assert buf.push(item(0.0), arrival_ts=0.0) == []
        ready = buf.push(item(10.0), arrival_ts=10.0)
        # Watermark is 10 - 5 = 5: only the ts=0 item is safe to release.
        assert [it.ts for it in ready] == [0.0]
        assert buf.held == 1

    def test_late_beyond_slack_is_released_and_counted(self):
        buf = DisorderBuffer(slack_ms=2.0)
        out = []
        out += buf.push(item(0.0), arrival_ts=0.0)
        out += buf.push(item(10.0), arrival_ts=10.0)
        out += buf.push(item(20.0), arrival_ts=20.0)  # releases ts=10
        # ts=1 arrives 19ms late — far beyond the 2ms slack.
        out += buf.push(item(1.0), arrival_ts=20.0)
        out += buf.flush()
        assert buf.late_releases == 1
        # Nothing is ever dropped, even when hopelessly late.
        assert sorted(it.ts for it in out) == [0.0, 1.0, 10.0, 20.0]

    def test_counters_snapshot(self):
        buf = DisorderBuffer(slack_ms=4.0)
        buf.push(item(1.0), arrival_ts=1.0)
        buf.push(item(2.0), arrival_ts=2.0)
        counters = buf.counters()
        assert counters["items_buffered"] == 2
        assert counters["slack_ms"] == 4.0
        assert counters["max_held"] == 2


class TestRetry:
    def test_rate_zero_never_faults(self):
        injector = DiskFaultProfile(failure_rate=0.0).make_injector()
        for _ in range(100):
            assert injector.charge("write") == (0.0, 0)
        assert injector.faults_injected == 0

    def test_fault_penalty_is_deterministic(self):
        profile = DiskFaultProfile(failure_rate=0.5, outage_ms=1.0, seed=3)
        a, b = profile.make_injector(), profile.make_injector()
        charges_a = [a.charge("write") for _ in range(200)]
        charges_b = [b.charge("write") for _ in range(200)]
        assert charges_a == charges_b
        assert a.faults_injected == b.faults_injected > 0
        assert a.retries == b.retries > 0

    def test_penalty_covers_the_outage(self):
        profile = DiskFaultProfile(failure_rate=1.0, outage_ms=3.0, seed=0)
        injector = profile.make_injector()
        penalty, retries = injector.charge("read")
        assert penalty >= 3.0
        assert retries >= 1
        assert injector.backoff_time_ms == pytest.approx(penalty)

    def test_exhausted_budget_raises_transient_io_error(self):
        profile = DiskFaultProfile(
            failure_rate=1.0,
            outage_ms=10_000.0,
            retry=RetryPolicy(max_retries=3, initial_backoff_ms=0.5),
            seed=0,
        )
        injector = profile.make_injector()
        with pytest.raises(TransientIOError):
            injector.charge("write")

    def test_maybe_injector_skips_inert_profiles(self):
        assert maybe_injector(None) is None
        assert maybe_injector(DiskFaultProfile(failure_rate=0.0)) is None
        assert maybe_injector(DiskFaultProfile(failure_rate=0.1)) is not None


class TestRetryBudget:
    """The capped *total* retry budget across a whole run."""

    def test_exhaustion_error_is_a_transient_io_error(self):
        # Pre-existing handlers that catch TransientIOError keep working.
        assert issubclass(RetryExhaustedError, TransientIOError)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive_budget(self, bad):
        with pytest.raises(ResilienceError, match="max_total_retries"):
            RetryPolicy(max_total_retries=bad)

    def test_spent_budget_fails_fast(self):
        profile = DiskFaultProfile(
            failure_rate=1.0,
            outage_ms=1.0,
            retry=RetryPolicy(initial_backoff_ms=1.0, max_total_retries=3),
            seed=0,
        )
        injector = profile.make_injector()
        survived = 0
        with pytest.raises(RetryExhaustedError, match="total retry budget"):
            for _ in range(100):
                injector.charge("write")
                survived += 1
        # Each surviving op pays exactly one 1ms retry, so a budget of 3
        # rides out three faults and the fourth fails fast, uncharged.
        assert survived == 3
        assert injector.retries == 3
        assert injector.faults_injected == 4
        assert injector.counters()["retry.exhausted"] == 1

    def test_budget_never_overcharged_mid_outage(self):
        # A long outage needs several retries per fault; the budget cap
        # must stop the backoff loop partway without overshooting.
        budget = 5
        profile = DiskFaultProfile(
            failure_rate=1.0,
            outage_ms=10.0,
            retry=RetryPolicy(
                initial_backoff_ms=4.0, max_total_retries=budget
            ),
            seed=0,
        )
        injector = profile.make_injector()
        injector.charge("read")  # two retries (4 + 8 ms >= 10 ms)
        with pytest.raises(RetryExhaustedError, match="mid-outage"):
            for _ in range(100):
                injector.charge("read")
        assert injector.retries <= budget
        assert injector.counters()["retry.exhausted"] == 1

    def test_per_operation_exhaustion_raises_same_type(self):
        profile = DiskFaultProfile(
            failure_rate=1.0,
            outage_ms=10_000.0,
            retry=RetryPolicy(max_retries=3, initial_backoff_ms=0.5),
            seed=0,
        )
        injector = profile.make_injector()
        with pytest.raises(RetryExhaustedError, match="still failing"):
            injector.charge("write")
        assert injector.counters()["retry.exhausted"] == 1

    def test_default_policy_has_no_total_cap(self):
        # No budget set: behaviour is identical to the pre-budget code —
        # a long fault-free-ish run never fails fast.
        profile = DiskFaultProfile(failure_rate=0.5, outage_ms=1.0, seed=7)
        injector = profile.make_injector()
        for _ in range(500):
            injector.charge("write")
        assert injector.retries > 0
        assert injector.counters()["retry.exhausted"] == 0
