"""The source-stall watchdog: detection, heartbeat, flag and raise modes."""

import pytest

from repro.errors import ResilienceError, SourceStallError
from repro.punctuations.patterns import WILDCARD
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore
from repro.resilience.watchdog import StallWatchdog
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema

SCHEMA = Schema.of("key", "payload")


class FakeSource:
    """Just the surface the watchdog polls."""

    def __init__(self, name="A"):
        self.name = name
        self.last_emit_time = 0.0
        self.exhausted = False


class FakeOperator:
    """Records pushes so tests can inspect synthesised heartbeats."""

    def __init__(self):
        self.finished = False
        self.pushed = []

    def push(self, item, port):
        self.pushed.append((item, port))


class FakeSide:
    """One input side exposing its punctuation store, like PJoin's."""

    def __init__(self, schema, join_field):
        self.store = PunctuationStore(schema, join_field)


class FakeJoinOperator(FakeOperator):
    """A FakeOperator whose pushed punctuations land in per-port stores."""

    def __init__(self, schema, join_field="key", n_ports=2):
        super().__init__()
        self.sides = [FakeSide(schema, join_field) for _ in range(n_ports)]

    def push(self, item, port):
        super().push(item, port)
        if isinstance(item, Punctuation):
            self.sides[port].store.add(item)


@pytest.fixture
def rig():
    engine = SimulationEngine()
    source = FakeSource()
    operator = FakeOperator()
    return engine, source, operator


def finish_at(engine, source, time):
    """End the episode so the watchdog stops re-scheduling itself."""

    def done():
        source.exhausted = True

    engine.schedule_at(time, done)


class TestHeartbeatMode:
    def test_stall_synthesises_one_all_wildcard_punctuation(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="heartbeat")
        watchdog.watch(source, operator, port=1, schema=SCHEMA)
        watchdog.start()
        finish_at(engine, source, 60.0)
        engine.run(max_events=100)

        assert watchdog.stalls_detected == 1
        assert watchdog.heartbeats_emitted == 1
        assert watchdog.degraded
        assert len(operator.pushed) == 1
        heartbeat, port = operator.pushed[0]
        assert port == 1
        assert isinstance(heartbeat, Punctuation)
        assert all(p is WILDCARD for p in heartbeat.patterns)

    def test_rearms_after_source_resumes(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="heartbeat")
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watchdog.start()

        def resume():
            source.last_emit_time = engine.now

        engine.schedule_at(30.0, resume)
        finish_at(engine, source, 80.0)
        engine.run(max_events=200)

        # One heartbeat before the resume, one after it goes silent again.
        assert watchdog.stalls_detected == 2
        assert watchdog.heartbeats_emitted == 2

    def test_active_source_never_triggers(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="heartbeat")
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watchdog.start()

        # Keep emitting every 4 ms — well inside the 10 ms tolerance.
        def chatter():
            source.last_emit_time = engine.now
            if engine.now < 50.0:
                engine.schedule(4.0, chatter)
            else:
                source.exhausted = True

        engine.schedule(0.0, chatter)
        engine.run(max_events=200)

        assert watchdog.stalls_detected == 0
        assert operator.pushed == []
        assert not watchdog.degraded


class TestHeartbeatSuppression:
    def test_standing_wildcard_promise_suppresses_heartbeat(self, rig):
        engine, source, _ = rig
        operator = FakeJoinOperator(SCHEMA)
        # The stalled input already holds an all-wildcard promise (the
        # stream's watermark has passed): re-asserting it would
        # double-count the promise, so the heartbeat is suppressed.
        operator.sides[1].store.add(
            Punctuation(SCHEMA, [WILDCARD] * SCHEMA.arity, ts=0.0)
        )
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="heartbeat")
        watchdog.watch(source, operator, port=1, schema=SCHEMA)
        watchdog.start()
        finish_at(engine, source, 60.0)
        engine.run(max_events=100)

        assert watchdog.stalls_detected == 1
        assert watchdog.heartbeats_emitted == 0
        assert watchdog.heartbeats_suppressed == 1
        assert operator.pushed == []

    def test_second_episode_is_idempotent_once_promise_lands(self, rig):
        engine, source, _ = rig
        operator = FakeJoinOperator(SCHEMA)
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="heartbeat")
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watchdog.start()

        def resume():
            source.last_emit_time = engine.now

        # Stall, resume, stall again.  The first episode's heartbeat
        # went into the store; the second episode finds the promise
        # still standing and synthesises nothing new.
        engine.schedule_at(30.0, resume)
        finish_at(engine, source, 80.0)
        engine.run(max_events=200)

        assert watchdog.stalls_detected == 2
        assert watchdog.heartbeats_emitted == 1
        assert watchdog.heartbeats_suppressed == 1
        assert len(operator.pushed) == 1

    def test_heartbeat_timestamps_are_strictly_monotone(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="heartbeat")
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watch = watchdog._watches[0]
        watch.last_heartbeat_ts = 50.0
        # A heartbeat at (or before) the last synthesised timestamp is
        # redundant; strictly later ones are not (FakeOperator has no
        # stores, so only the monotone guard applies).
        assert watchdog._heartbeat_redundant(watch, 50.0)
        assert watchdog._heartbeat_redundant(watch, 40.0)
        assert not watchdog._heartbeat_redundant(watch, 50.1)

    def test_operators_without_stores_keep_old_behaviour(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="heartbeat")
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watchdog.start()
        finish_at(engine, source, 60.0)
        engine.run(max_events=100)

        assert watchdog.heartbeats_emitted == 1
        assert watchdog.heartbeats_suppressed == 0


class TestFlagMode:
    def test_only_marks_degraded(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="flag")
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watchdog.start()
        finish_at(engine, source, 60.0)
        engine.run(max_events=100)

        assert watchdog.degraded
        assert watchdog.stalls_detected == 1
        assert watchdog.heartbeats_emitted == 0
        assert operator.pushed == []
        assert watchdog.counters() == {
            "stalls_detected": 1,
            "heartbeats_emitted": 0,
            "heartbeats_suppressed": 0,
            "degraded": 1,
        }


class TestRaiseMode:
    def test_raises_source_stall_error(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0, on_stall="raise")
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watchdog.start()
        with pytest.raises(SourceStallError, match="silent"):
            engine.run(max_events=100)


class TestValidation:
    def test_rejects_bad_configuration(self, rig):
        engine, source, operator = rig
        with pytest.raises(ResilienceError):
            StallWatchdog(engine, timeout_ms=0.0)
        with pytest.raises(ResilienceError):
            StallWatchdog(engine, timeout_ms=10.0, on_stall="panic")
        with pytest.raises(ResilienceError):
            StallWatchdog(engine, timeout_ms=10.0, check_interval_ms=-1.0)

    def test_start_requires_watches(self, rig):
        engine, _source, _operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0)
        with pytest.raises(ResilienceError, match="nothing to watch"):
            watchdog.start()

    def test_double_start_rejected(self, rig):
        engine, source, operator = rig
        watchdog = StallWatchdog(engine, timeout_ms=10.0)
        watchdog.watch(source, operator, port=0, schema=SCHEMA)
        watchdog.start()
        with pytest.raises(ResilienceError, match="already started"):
            watchdog.start()
