"""Chaos scenarios: determinism, golden counters, policy coverage.

These tests back the acceptance criteria directly: the same scenario and
seed must yield identical fault/retry/quarantine counters across runs,
and quarantine/repair runs must complete on every preset.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ContractViolationError, ResilienceError
from repro.resilience import CHAOS_SCENARIOS, run_chaos

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "goldens"

SCENARIOS = sorted(CHAOS_SCENARIOS)
# Presets that plant contract violations in the schedules; `stall` only
# produces violations indirectly (heartbeat vs. resumed source).
VIOLATING = [s for s in SCENARIOS if CHAOS_SCENARIOS[s].violations_a > 0]


@pytest.mark.parametrize("name", SCENARIOS)
def test_same_seed_same_counters(name):
    first = run_chaos(name, policy="quarantine")
    second = run_chaos(name, policy="quarantine")
    assert first.summary == second.summary
    assert first.sink.tuple_count == second.sink.tuple_count


@pytest.mark.parametrize("name", SCENARIOS)
def test_summary_matches_checked_in_golden(name):
    golden_path = GOLDEN_DIR / f"chaos_{name}.json"
    golden = json.loads(golden_path.read_text())
    assert run_chaos(name).summary == golden


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("policy", ["quarantine", "repair"])
def test_lenient_policies_complete_every_preset(name, policy):
    run = run_chaos(name, policy=policy)
    summary = run.summary
    assert summary["policy"] == policy
    if CHAOS_SCENARIOS[name].n_shards > 0:
        # Supervised crash presets report equivalence, not violations:
        # completing means the recovered run matched the reference.
        assert summary["results_match"] == 1
        assert summary["results_produced"] > 0
        return
    # Injected schedule faults were seen (or nothing was injected).
    assert summary["violations_seen"] >= summary["violations_injected"]
    if policy == "quarantine":
        assert summary["dead_letters"] == summary["tuples_quarantined"]
        assert summary["punctuations_retracted"] == 0
    else:
        assert summary["dead_letters"] == 0
        assert summary["punctuations_retracted"] == summary["violations_seen"]
    assert summary["results_produced"] > 0


@pytest.mark.parametrize("name", VIOLATING)
def test_strict_raises_on_violating_presets(name):
    with pytest.raises(ContractViolationError):
        run_chaos(name, policy="strict")


def test_explicit_seed_overrides_preset_seed():
    run = run_chaos("gentle", seed=123)
    assert run.summary["seed"] == 123
    again = run_chaos("gentle", seed=123)
    assert run.summary == again.summary


def test_disk_storm_actually_faults_and_retries():
    summary = run_chaos("disk_storm").summary
    assert summary["disk_faults_injected"] > 0
    assert summary["disk_retries"] >= summary["disk_faults_injected"]


def test_stall_scenario_emits_heartbeat_and_degrades():
    summary = run_chaos("stall").summary
    assert summary["stalls_detected"] >= 1
    assert summary["heartbeats_emitted"] >= 1
    assert summary["degraded"] == 1


def test_disorder_scenario_reorders_but_nothing_is_late():
    summary = run_chaos("disorder").summary
    assert summary["tuples_reordered"] > 0
    # Slack (20 ms) covers the injected displacement (15 ms).
    assert summary["late_releases"] == 0


def test_unknown_scenario_name_rejected():
    with pytest.raises(ResilienceError, match="unknown chaos scenario"):
        run_chaos("mayhem")
