"""Fault-policy vocabulary and the dead-letter store."""

import pytest

from repro.errors import ReproError, ResilienceError
from repro.resilience.deadletter import (
    DEFAULT_SAMPLE_CAPACITY,
    REASON_CONTRACT_VIOLATION,
    DeadLetterStore,
)
from repro.resilience.policy import (
    FAULT_POLICIES,
    QUARANTINE,
    REPAIR,
    STRICT,
    TRUST,
    normalize_policy,
)


class TestNormalizePolicy:
    def test_canonical_names_pass_through(self):
        for policy in FAULT_POLICIES:
            assert normalize_policy(policy) == policy

    def test_legacy_validate_inputs_spellings(self):
        assert normalize_policy("raise") == STRICT
        assert normalize_policy("count") == QUARANTINE
        assert normalize_policy("off") == TRUST

    def test_unknown_policy_raises(self):
        with pytest.raises(ResilienceError, match="fault policy"):
            normalize_policy("lenient")

    def test_resilience_error_is_a_repro_error(self):
        assert issubclass(ResilienceError, ReproError)


class TestDeadLetterStore:
    def test_counts_by_reason_and_side(self):
        dlq = DeadLetterStore(name="j.dlq")
        dlq.add("t1", 0, REASON_CONTRACT_VIOLATION, 5, now=1.0)
        dlq.add("t2", 1, REASON_CONTRACT_VIOLATION, 6, now=2.0)
        dlq.add("t3", 0, "duplicate", 5, now=3.0)
        assert len(dlq) == 3
        counters = dlq.counters()
        assert counters["quarantined"] == 3
        assert counters[f"reason.{REASON_CONTRACT_VIOLATION}"] == 2
        assert counters["reason.duplicate"] == 1
        assert counters["side0"] == 2
        assert counters["side1"] == 1

    def test_quarantined_values_in_order(self):
        dlq = DeadLetterStore(name="j.dlq")
        dlq.add("t1", 0, REASON_CONTRACT_VIOLATION, 5, now=1.0)
        dlq.add("t2", 0, REASON_CONTRACT_VIOLATION, 7, now=2.0)
        assert dlq.quarantined_values() == [5, 7]

    def test_samples_are_bounded_but_counts_exact(self):
        dlq = DeadLetterStore(name="j.dlq", sample_capacity=4)
        for i in range(100):
            dlq.add(f"t{i}", 0, REASON_CONTRACT_VIOLATION, i, now=float(i))
        assert len(dlq) == 100
        assert len(dlq.entries) == 4
        assert dlq.counters()["quarantined"] == 100

    def test_default_sample_capacity(self):
        assert DeadLetterStore(name="x").sample_capacity == DEFAULT_SAMPLE_CAPACITY
