"""The governor's two equivalence guarantees, across every join.

* Unlimited budget — byte-identical: same result multiset AND the same
  virtual finish time as an ungoverned run (the fast path touches
  nothing, so not a single simulated event may shift).
* Any finite budget — result-equivalent: spills and fault-backs change
  timing and counters, never the output multiset.
"""

import math
from collections import Counter
from itertools import product

import pytest

from repro.core.config import PJoinConfig
from repro.core.nary import NaryPJoin
from repro.experiments.harness import (
    governed,
    pjoin_factory,
    run_join_experiment,
    shj_factory,
    xjoin_factory,
)
from repro.memory.budget import GovernorSpec
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.shard.backend import run_sharded_multiprocess
from repro.sim.costs import CostModel
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset

CONFIG = PJoinConfig(purge_threshold=1, propagation_mode="push_count")

FACTORIES = {
    "pjoin": lambda: pjoin_factory(CONFIG),
    "xjoin": lambda: xjoin_factory(),
    "shj": lambda: shj_factory(),
}

TIGHT = 16.0


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        n_tuples_per_stream=600, punct_spacing_a=40, punct_spacing_b=40,
        seed=7,
    )


@pytest.fixture(scope="module")
def oracle(workload):
    return reference_join_multiset(
        workload.schedule_a, workload.schedule_b,
        workload.schemas[0], workload.schemas[1],
    )


def run(name, workload, spec):
    with governed(spec):
        return run_join_experiment(
            FACTORIES[name](), workload, label=name, keep_items=True
        )


def multiset(experiment_run):
    return Counter(dict(experiment_run.sink.result_multiset()))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_unlimited_budget_is_byte_identical(name, workload, oracle):
    base = run(name, workload, None)
    inf = run(name, workload, GovernorSpec(math.inf))
    assert multiset(inf) == multiset(base) == oracle
    assert inf.duration_ms == base.duration_ms
    counters = inf.join.counters()
    assert counters.get("governor.spills", 0) == 0
    assert counters.get("governor.faults", 0) == 0


@pytest.mark.parametrize(
    "name, policy",
    [
        ("pjoin", "lru"),
        ("pjoin", "punctuation-aware"),
        ("xjoin", "lru"),
        ("xjoin", "largest-partition-first"),
        ("xjoin", "punctuation-aware"),
        ("shj", "lru"),
    ],
)
def test_finite_budget_preserves_result_multiset(
    name, policy, workload, oracle
):
    governed_run = run(
        name, workload, GovernorSpec(TIGHT, policy=policy)
    )
    assert multiset(governed_run) == oracle
    counters = governed_run.join.counters()
    assert counters["governor.spills"] > 0


def test_tight_budget_takes_longer_than_unlimited(workload):
    inf = run("xjoin", workload, GovernorSpec(math.inf))
    tight = run("xjoin", workload, GovernorSpec(TIGHT))
    assert tight.duration_ms > inf.duration_ms


# ----------------------------------------------------------------------
# N-ary
# ----------------------------------------------------------------------

NARY_SCHEMAS = [
    Schema.of("key", "a", name="S0"),
    Schema.of("key", "b", name="S1"),
    Schema.of("key", "c", name="S2"),
]


def make_nary_schedules(n_keys=6, per_stream=60):
    import random

    rng = random.Random(11)
    schedules = [[], [], []]
    lo = [0, 0, 0]
    t = 0.0
    for _ in range(per_stream * 3):
        t += rng.random()
        stream = rng.randrange(3)
        if lo[stream] < n_keys - 1 and rng.random() < 0.15:
            schedules[stream].append(
                (t, Punctuation.on_field(NARY_SCHEMAS[stream], "key",
                                         lo[stream], ts=t))
            )
            lo[stream] += 1
            continue
        key = rng.randrange(lo[stream], n_keys)
        schedules[stream].append(
            (t, Tuple(NARY_SCHEMAS[stream], (key, rng.randrange(100)), ts=t))
        )
    return schedules


def nary_multiset(schedules, spec):
    plan = QueryPlan(cost_model=CostModel().scaled(0.001))
    join = NaryPJoin(
        plan.engine, plan.cost_model, NARY_SCHEMAS, ["key"] * 3,
        config=PJoinConfig(purge_threshold=1), governor=spec,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    for port, schedule in enumerate(schedules):
        plan.add_source(schedule, join, port=port)
    plan.run()
    return Counter(dict(sink.result_multiset())), join


def test_nary_governed_matches_ungoverned():
    schedules = make_nary_schedules()
    expected = Counter(
        a.values + b.values + c.values
        for a, b, c in product(*[
            [item for _t, item in s if isinstance(item, Tuple)]
            for s in schedules
        ])
        if a.values[0] == b.values[0] == c.values[0]
    )
    base, _ = nary_multiset(schedules, None)
    tight, join = nary_multiset(schedules, GovernorSpec(8.0))
    assert base == tight == expected
    assert join.counters()["governor.spills"] > 0


# ----------------------------------------------------------------------
# Sharded: per-shard budget shares must not bend the merged result
# ----------------------------------------------------------------------

def test_sharded_governed_matches_oracle(workload, oracle):
    outcome = run_sharded_multiprocess(
        workload, 2, config=CONFIG, governor=GovernorSpec(TIGHT)
    )
    assert Counter(outcome.result_multiset()) == Counter(
        {values: count for values, count in oracle.items()}
    )
    assert outcome.counters.get("governor.spills", 0) > 0


def test_sharded_unlimited_matches_ungoverned_sharded(workload):
    base = run_sharded_multiprocess(workload, 2, config=CONFIG)
    inf = run_sharded_multiprocess(
        workload, 2, config=CONFIG, governor=GovernorSpec(math.inf)
    )
    assert inf.result_multiset() == base.result_multiset()
    assert inf.virtual_now == base.virtual_now
