"""MemoryGovernor unit tests: demotion, fault-back, pinning, policies."""

import math

import pytest

from repro.memory.budget import GovernorSpec
from repro.memory.governor import MemoryGovernor
from repro.sim.costs import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import PartitionedHashTable, stable_hash
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "seq")


def make_tuple(key, seq=0, ts=0.0):
    return Tuple(SCHEMA, (key, seq), ts=ts, validate=False)


def make_governor(budget, policy="lru", n_partitions=4, sides=1):
    cost_model = CostModel()
    disk = SimulatedDisk(cost_model)
    governor = MemoryGovernor(budget, policy=policy, disk=disk)
    tables = []
    for side in range(sides):
        table = PartitionedHashTable(n_partitions=n_partitions)
        governor.register_side(side, table)
        tables.append(table)
    return governor, tables


def fill(table, keys, ts=0.0):
    for seq, key in enumerate(keys):
        table.insert(make_tuple(key, seq, ts), key, ts)


class TestUnlimitedFastPath:
    def test_every_hook_is_free_and_stateless(self):
        governor, (table,) = make_governor(math.inf)
        fill(table, range(50))
        assert governor.fault_in(0, 3) == 0.0
        assert governor.after_insert(0, 3) == 0.0
        assert governor.fault_in_all() == 0.0
        assert governor.recency == {}
        assert governor.spills == 0 and governor.faults == 0
        assert table.memory_count == 50 and table.cold_count == 0

    def test_counters_omit_infinite_budget(self):
        governor, _ = make_governor(math.inf)
        counters = governor.counters()
        assert "budget_tuples" not in counters
        assert counters["spills"] == 0


class TestEnforcement:
    def test_over_budget_insert_demotes_down_to_budget(self):
        governor, (table,) = make_governor(8.0)
        fill(table, range(16))
        governor.after_insert(0, 15)
        assert table.memory_count <= 8
        assert table.cold_count == 16 - table.memory_count
        assert governor.spills > 0
        assert governor.tuples_spilled == table.cold_count
        assert governor.counters()["budget_tuples"] == 8.0

    def test_spill_charges_disk_write_cost(self):
        governor, (table,) = make_governor(4.0)
        fill(table, range(12))
        cost = governor.after_insert(0, 11)
        assert cost > 0.0
        assert governor.spill_time_ms == pytest.approx(cost)
        assert governor.disk.tuples_written == governor.tuples_spilled

    def test_fault_in_promotes_cold_bucket_and_charges_reads(self):
        governor, (table,) = make_governor(4.0)
        fill(table, range(12))
        governor.after_insert(0, 11)
        cold_before = table.cold_count
        assert cold_before > 0
        # Touch every key so each cold bucket faults back in.
        cost = sum(governor.fault_in(0, key) for key in range(12))
        assert cost > 0.0
        assert table.cold_count == 0
        assert governor.tuples_faulted == cold_before
        assert governor.disk.tuples_read == cold_before

    def test_round_trip_preserves_entries_and_order(self):
        governor, (table,) = make_governor(4.0)
        fill(table, range(12))
        before = [(e.tup.values, e.join_hash, e.ats, e.dts)
                  for e in table.iter_all()]
        governor.after_insert(0, 11)
        governor.fault_in_all()
        after = [(e.tup.values, e.join_hash, e.ats, e.dts)
                 for e in table.iter_all()]
        assert sorted(after) == sorted(before)
        # dts untouched: demotion never closes a residency interval.
        assert all(d == math.inf for _v, _h, _a, d in after)

    def test_eviction_never_demotes_pinned_bucket(self):
        governor, (table,) = make_governor(1.0, n_partitions=2)
        fill(table, range(8))
        # Pin bucket of key 0 as an in-flight probe would.
        governor.fault_in(0, 0)
        pinned = table.partition_for(0)
        governor._enforce()
        assert pinned.memory_count > 0  # the probed bucket stayed warm
        # Unpinned buckets were fair game.
        assert table.cold_count > 0

    def test_all_pinned_denies_eviction_instead_of_violating(self):
        governor, (table,) = make_governor(1.0, n_partitions=1)
        fill(table, range(6))
        governor.fault_in(0, 0)  # the only bucket is now pinned
        governor._enforce()
        assert governor.evictions_denied == 1
        assert table.cold_count == 0
        # after_insert clears pins, so the next enforcement succeeds.
        governor.after_insert(0, 0)
        governor._enforce()
        assert table.memory_count <= 1


class TestPolicies:
    def test_lru_picks_least_recently_touched(self):
        governor, (table,) = make_governor(1.0, policy="lru", n_partitions=4)
        # One tuple per bucket (keys 0..3 hash to distinct buckets mod 4
        # via stable_hash; derive keys from the table's own mapping).
        by_bucket = {}
        key = 0
        while len(by_bucket) < 4:
            bucket = stable_hash(key) % 4
            if bucket not in by_bucket:
                by_bucket[bucket] = key
                table.insert(make_tuple(key), key, 0.0)
            key += 1
        keys = [by_bucket[b] for b in sorted(by_bucket)]
        for k in keys:
            governor.fault_in(0, k)
        governor._pins.clear()
        candidates = [
            (governor._by_key[0], p)
            for p in table.partitions if p.memory_count
        ]
        _, victim = governor.policy.select(candidates, governor)
        assert victim is table.partition_for(keys[0])

    def test_largest_partition_first(self):
        governor, (table,) = make_governor(
            1.0, policy="largest-partition-first", n_partitions=2
        )
        fill(table, [0] * 5 + [1])
        candidates = [
            (governor._by_key[0], p)
            for p in table.partitions if p.memory_count
        ]
        _, victim = governor.policy.select(candidates, governor)
        assert victim is table.partition_for(0)

    def test_punctuation_aware_prefers_covered_buckets(self):
        cost_model = CostModel()
        governor = MemoryGovernor(
            1.0, policy="punctuation-aware", disk=SimulatedDisk(cost_model)
        )
        table = PartitionedHashTable(n_partitions=2)
        governor.register_side(0, table, covered_by=lambda value: value == 1)
        fill(table, [0] * 5 + [1])  # bucket(1) is covered but smaller
        candidates = [
            (governor._by_key[0], p)
            for p in table.partitions if p.memory_count
        ]
        _, victim = governor.policy.select(candidates, governor)
        assert victim is table.partition_for(1)

    def test_punctuation_aware_degrades_to_largest_without_coverage(self):
        governor, (table,) = make_governor(
            1.0, policy="punctuation-aware", n_partitions=2
        )
        fill(table, [0] * 5 + [1])
        candidates = [
            (governor._by_key[0], p)
            for p in table.partitions if p.memory_count
        ]
        _, victim = governor.policy.select(candidates, governor)
        assert victim is table.partition_for(0)


class TestRegistration:
    def test_duplicate_side_rejected(self):
        governor, _ = make_governor(10.0)
        with pytest.raises(ValueError):
            governor.register_side(0, PartitionedHashTable())

    def test_usage_spans_sides(self):
        governor, (a, b) = make_governor(100.0, sides=2)
        fill(a, range(3))
        fill(b, range(5))
        assert governor.usage() == 8

    def test_stats_include_policy_and_budget(self):
        governor, _ = make_governor(10.0, policy="largest-partition-first")
        stats = governor.stats()
        assert stats["policy"] == "largest-partition-first"
        assert stats["budget"] == "10"


class TestSpecBuildIntegration:
    def test_spec_build_round_trip(self):
        spec = GovernorSpec(16.0, policy="punctuation-aware")
        governor = spec.build(CostModel())
        assert governor.budget_tuples == 16.0
        assert governor.policy_name == "punctuation-aware"
