"""Property tests for the governor's two safety invariants.

* Demote → fault-back is lossless: every entry returns with identical
  tuple values, timestamps, ``join_hash`` and (open) ``dts``, in the
  original insertion order, for any insert pattern and budget.
* Eviction never demotes a bucket the in-flight item is probing: the
  pinned bucket stays warm through arbitrary enforcement passes, no
  matter which policy picks the victims.
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.memory.governor import MemoryGovernor
from repro.memory.policies import POLICIES
from repro.sim.costs import CostModel
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import PartitionedHashTable
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SCHEMA = Schema.of("key", "seq")


def build(keys, budget, policy, n_partitions):
    governor = MemoryGovernor(
        budget, policy=policy, disk=SimulatedDisk(CostModel())
    )
    table = PartitionedHashTable(n_partitions=n_partitions)
    governor.register_side("A", table)
    for seq, key in enumerate(keys):
        tup = Tuple(SCHEMA, (key, seq), ts=float(seq), validate=False)
        table.insert(tup, key, float(seq))
    return governor, table


def snapshot(table):
    """Per-bucket entry fingerprints, warm order then cold order."""
    return {
        partition.index: [
            (id(e.tup), e.tup.values, e.tup.ts, e.join_value, e.join_hash,
             e.ats, e.dts)
            for e in list(partition.iter_memory()) + list(partition.iter_cold())
        ]
        for partition in table.partitions
    }


@SETTINGS
@given(
    keys=st.lists(st.integers(0, 40), min_size=1, max_size=120),
    budget=st.integers(1, 60),
    policy=st.sampled_from(sorted(POLICIES)),
    n_partitions=st.integers(1, 8),
)
def test_demote_faultback_round_trip_is_lossless(
    keys, budget, policy, n_partitions
):
    governor, table = build(keys, float(budget), policy, n_partitions)
    before = snapshot(table)
    total = table.total_count

    governor.after_insert("A", keys[-1])  # enforce: demotes until on budget
    assert table.memory_count <= budget or governor.evictions_denied > 0
    assert table.memory_count + table.cold_count == total  # nothing lost

    governor.fault_in_all()  # promote every cold bucket back
    assert table.cold_count == 0
    assert table.memory_count == total
    after = snapshot(table)
    assert after == before  # same objects, same order, dts still open
    assert all(
        fingerprint[-1] == math.inf
        for entries in after.values() for fingerprint in entries
    )
    # I/O symmetry: every spilled tuple was read back exactly once.
    assert governor.disk.tuples_read == governor.disk.tuples_written


@SETTINGS
@given(
    keys=st.lists(st.integers(0, 40), min_size=2, max_size=120),
    budget=st.integers(1, 20),
    policy=st.sampled_from(sorted(POLICIES)),
    n_partitions=st.integers(2, 8),
    probe_key=st.integers(0, 40),
)
def test_eviction_never_demotes_the_probed_bucket(
    keys, budget, policy, n_partitions, probe_key
):
    governor, table = build(keys, float(budget), policy, n_partitions)
    governor.fault_in("A", probe_key)  # pins the probed bucket
    pinned = table.partition_for(probe_key)
    warm_in_pinned = pinned.memory_count

    governor._enforce()

    # The pinned bucket kept its entire warm portion.
    assert pinned.memory_count == warm_in_pinned
    assert pinned.cold_count == 0
    # Enforcement either reached the budget using other buckets or was
    # denied because everything left warm is pinned.
    others_warm = table.memory_count - pinned.memory_count
    assert table.memory_count <= budget or (
        others_warm == 0 and governor.evictions_denied > 0
    )
