"""Budget parsing and the picklable GovernorSpec."""

import math
import pickle

import pytest

from repro.errors import ConfigError
from repro.memory.budget import (
    DEFAULT_BYTES_PER_TUPLE,
    GovernorSpec,
    format_budget,
    parse_memory_budget,
)
from repro.memory.governor import MemoryGovernor
from repro.sim.costs import CostModel


class TestParseMemoryBudget:
    @pytest.mark.parametrize(
        "text", ["inf", "INF", "infinity", "none", "unlimited", " inf "]
    )
    def test_unlimited_spellings(self, text):
        assert math.isinf(parse_memory_budget(text))

    def test_plain_tuple_count(self):
        assert parse_memory_budget("5000") == 5000.0

    def test_tuple_suffixes(self):
        assert parse_memory_budget("500t") == 500.0
        assert parse_memory_budget("500 tuples") == 500.0

    def test_separators_stripped(self):
        assert parse_memory_budget("10,000") == 10_000.0
        assert parse_memory_budget("10_000") == 10_000.0

    def test_byte_suffixes_convert_at_nominal_tuple_size(self):
        assert parse_memory_budget("64kb") == (64 * 1024) / DEFAULT_BYTES_PER_TUPLE
        assert parse_memory_budget("1mb") == (1 << 20) / DEFAULT_BYTES_PER_TUPLE

    def test_custom_bytes_per_tuple(self):
        assert parse_memory_budget("1kb", bytes_per_tuple=128) == 8.0

    @pytest.mark.parametrize("text", ["garbage", "-5", "5xb", "", "kb"])
    def test_rejects_junk(self, text):
        with pytest.raises(ConfigError):
            parse_memory_budget(text)

    def test_rejects_sub_tuple_budgets(self):
        with pytest.raises(ConfigError):
            parse_memory_budget("0")
        with pytest.raises(ConfigError):
            parse_memory_budget("1b")  # under one 64-byte tuple

    def test_format_round_trip(self):
        assert format_budget(parse_memory_budget("inf")) == "inf"
        assert format_budget(parse_memory_budget("123")) == "123"


class TestGovernorSpec:
    def test_validates_policy(self):
        with pytest.raises(ConfigError):
            GovernorSpec(100.0, policy="nope")

    def test_validates_budget(self):
        with pytest.raises(ConfigError):
            GovernorSpec(0.5)

    def test_unlimited_flag(self):
        assert GovernorSpec(math.inf).unlimited
        assert not GovernorSpec(10.0).unlimited

    def test_budget_bytes(self):
        assert GovernorSpec(10.0).budget_bytes == 10 * DEFAULT_BYTES_PER_TUPLE

    def test_is_picklable(self):
        spec = GovernorSpec(128.0, policy="largest-partition-first")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_split_sums_to_global(self):
        spec = GovernorSpec(10.0)
        shares = spec.split(4)
        assert [s.budget_tuples for s in shares] == [3.0, 3.0, 2.0, 2.0]
        assert sum(s.budget_tuples for s in shares) == 10.0
        assert all(s.policy == spec.policy for s in shares)

    def test_split_degrades_to_one_tuple_per_shard(self):
        shares = GovernorSpec(3.0).split(5)
        assert [s.budget_tuples for s in shares] == [1.0, 1.0, 1.0, 1.0, 1.0]

    def test_split_unlimited(self):
        shares = GovernorSpec(math.inf).split(3)
        assert len(shares) == 3
        assert all(s.unlimited for s in shares)

    def test_split_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            GovernorSpec(10.0).split(0)

    def test_build_creates_private_disk(self):
        governor = GovernorSpec(10.0).build(CostModel())
        assert isinstance(governor, MemoryGovernor)
        assert governor.disk is not None

    def test_build_uses_shared_disk(self):
        from repro.storage.disk import SimulatedDisk

        disk = SimulatedDisk(CostModel())
        governor = GovernorSpec(10.0).build(CostModel(), disk=disk)
        assert governor.disk is disk
