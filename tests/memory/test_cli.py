"""CLI surface of the memory governor: `repro memory` and the flags."""

import pytest

from repro.cli import main


class TestMemoryCommand:
    def test_smoke_passes_and_prints_table(self, capsys):
        code = main(["memory", "--tuples", "400", "--budget", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PJoin-1" in out and "XJoin" in out
        assert "b=60" in out

    def test_check_flag_exits_zero_on_pass(self, capsys):
        assert main(
            ["memory", "--tuples", "400", "--budget", "60", "--check"]
        ) == 0
        assert "memory governor smoke passed" in capsys.readouterr().out

    def test_infinite_budget_is_rejected(self, capsys):
        assert main(["memory", "--tuples", "400", "--budget", "inf"]) == 2
        assert "finite" in capsys.readouterr().err

    def test_eviction_policy_is_accepted(self, capsys):
        code = main(
            ["memory", "--tuples", "400", "--budget", "60",
             "--eviction-policy", "punctuation-aware"]
        )
        assert code == 0


class TestBudgetFlagParsing:
    def test_garbage_budget_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figures", "figure6", "--memory-budget", "garbage"])
        assert excinfo.value.code == 2
        assert "memory budget" in capsys.readouterr().err

    def test_bad_policy_is_an_argparse_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "--eviction-policy", "bogus"])
        assert excinfo.value.code == 2


class TestFiguresWithBudget:
    def test_governed_figure_runs(self, capsys):
        code = main(
            ["figures", "figure6", "--scale", "0.06",
             "--memory-budget", "64", "--eviction-policy", "lru"]
        )
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_budget_refuses_parallel_jobs(self, capsys):
        code = main(
            ["figures", "--all", "--jobs", "2", "--memory-budget", "100"]
        )
        assert code == 2
        assert "--jobs" in capsys.readouterr().err
