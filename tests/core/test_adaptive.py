"""Unit and integration tests for the adaptive purge controller."""

import pytest

from repro.core.adaptive import AdaptivePurgeController
from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.errors import ConfigError
from repro.operators.sink import Sink
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.generator import generate_workload


def build_join(plan, workload, purge_threshold):
    return PJoin(
        plan.engine, plan.cost_model,
        workload.schemas[0], workload.schemas[1], "key", "key",
        config=PJoinConfig(purge_threshold=purge_threshold),
    )


def run_adaptive(start_threshold, seed=9, n=6000, **controller_kwargs):
    workload = generate_workload(
        n_tuples_per_stream=n, punct_spacing_a=10, punct_spacing_b=10, seed=seed
    )
    plan = QueryPlan()
    join = build_join(plan, workload, start_threshold)
    sink = Sink(plan.engine, plan.cost_model, keep_items=False)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    controller = AdaptivePurgeController(join, **controller_kwargs)
    controller.start()
    plan.run()
    return join, sink, controller


class TestValidation:
    def test_parameter_validation(self, engine, cheap_cost_model):
        workload = generate_workload(n_tuples_per_stream=50, seed=1)
        plan = QueryPlan(engine=engine, cost_model=cheap_cost_model)
        join = build_join(plan, workload, 1)
        with pytest.raises(ConfigError):
            AdaptivePurgeController(join, interval_ms=0)
        with pytest.raises(ConfigError):
            AdaptivePurgeController(join, factor=1.0)
        with pytest.raises(ConfigError):
            AdaptivePurgeController(join, low_ratio=2.0, high_ratio=1.0)
        with pytest.raises(ConfigError):
            AdaptivePurgeController(join, max_threshold=0)

    def test_double_start_rejected(self, engine, cheap_cost_model):
        workload = generate_workload(n_tuples_per_stream=50, seed=1)
        plan = QueryPlan(engine=engine, cost_model=cheap_cost_model)
        join = build_join(plan, workload, 1)
        controller = AdaptivePurgeController(join)
        controller.start()
        with pytest.raises(ConfigError):
            controller.start()


class TestAdaptation:
    def test_raises_threshold_when_purging_dominates(self):
        """Starting eager on a punctuation-dense workload: purge cost
        dwarfs probe cost, so the controller must back off."""
        join, _sink, controller = run_adaptive(start_threshold=1)
        assert controller.current_threshold > 1
        assert controller.adjustments

    def test_lowers_threshold_when_probing_dominates(self):
        """Starting almost-never-purging: the state grows, probing
        dominates, and the controller must tighten."""
        join, _sink, controller = run_adaptive(start_threshold=1024)
        assert controller.current_threshold < 1024

    def test_adaptive_run_is_competitive_with_fixed_optimum(self):
        """The controller should land within 2x of a well-tuned fixed
        threshold's finish time, starting from a terrible one."""
        workload = generate_workload(
            n_tuples_per_stream=6000, punct_spacing_a=10, punct_spacing_b=10,
            seed=9,
        )

        def run_fixed(threshold):
            plan = QueryPlan()
            join = build_join(plan, workload, threshold)
            sink = Sink(plan.engine, plan.cost_model, keep_items=False)
            join.connect(sink)
            plan.add_source(workload.schedule_a, join, port=0)
            plan.add_source(workload.schedule_b, join, port=1)
            plan.run()
            return sink.eos_time

        tuned = run_fixed(50)
        _join, sink, _controller = run_adaptive(start_threshold=1)
        assert sink.eos_time < 2.0 * tuned

    def test_results_unaffected_by_adaptation(self):
        from collections import Counter

        from repro.workloads.reference import reference_join_multiset

        workload = generate_workload(
            n_tuples_per_stream=1000, punct_spacing_a=8, punct_spacing_b=16,
            seed=4,
        )
        plan = QueryPlan(cost_model=CostModel().scaled(0.01))
        join = build_join(plan, workload, 1)
        sink = Sink(plan.engine, plan.cost_model, keep_items=True)
        join.connect(sink)
        plan.add_source(workload.schedule_a, join, port=0)
        plan.add_source(workload.schedule_b, join, port=1)
        AdaptivePurgeController(join, interval_ms=200.0).start()
        plan.run()
        expected = reference_join_multiset(
            workload.schedule_a, workload.schedule_b,
            workload.schemas[0], workload.schemas[1],
        )
        assert Counter(dict(sink.result_multiset())) == expected

    def test_threshold_clamped(self):
        _join, _sink, controller = run_adaptive(
            start_threshold=1, n=4000, max_threshold=8
        )
        assert controller.current_threshold <= 8
        assert all(t <= 8 for _when, t in controller.adjustments)
