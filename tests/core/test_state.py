"""Unit tests for PJoin's per-stream join state."""

import pytest

from repro.core.state import JoinStateSide
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v")


@pytest.fixture
def side():
    return JoinStateSide(SCHEMA, "key", n_partitions=4, side_name="A")


def tup(key):
    return Tuple(SCHEMA, (key, 0))


class TestTuples:
    def test_insert_and_probe(self, side):
        side.insert(tup(1), 1, now=1.0)
        side.insert(tup(1), 1, now=2.0)
        occupancy, matches = side.probe(1)
        assert len(matches) == 2
        assert side.tuples_inserted == 2
        assert side.total_size == 2

    def test_sizes(self, side):
        entry = side.insert(tup(1), 1, now=1.0)
        assert side.memory_size == 1
        assert side.disk_size == 0
        side.buffer_entry(
            side.table.remove_value(1)[0], now=2.0
        )
        assert side.memory_size == 0
        assert side.total_size == 1  # purge buffer counts


class TestPunctuations:
    def test_add_exploitable(self, side):
        pid = side.add_punctuation(Punctuation.on_field(SCHEMA, "key", 1))
        assert pid == 0
        assert side.covers(1)

    def test_unexploitable_counted_not_stored(self, side):
        punct = Punctuation.from_mapping(SCHEMA, {"key": 1, "v": 2})
        assert side.add_punctuation(punct) is None
        assert side.unexploitable_punctuations == 1
        assert not side.covers(1)

    def test_duplicate_join_pattern_dropped(self, side):
        side.add_punctuation(Punctuation.on_field(SCHEMA, "key", 1))
        assert side.add_punctuation(Punctuation.on_field(SCHEMA, "key", 1)) is None
        assert side.duplicate_punctuations == 1
        assert side.punctuation_count == 1


class TestPurgeBuffer:
    def test_buffer_entry_closes_residency_interval(self, side):
        entry = side.insert(tup(1), 1, now=1.0)
        side.table.remove_value(1)
        side.buffer_entry(entry, now=5.0)
        assert entry.dts == 5.0
        assert side.tuples_buffered == 1

    def test_clear_purge_buffer_discards_and_maintains_index(self, side):
        side.add_punctuation(Punctuation.on_field(SCHEMA, "key", 1))
        entry = side.insert(tup(1), 1, now=1.0)
        side.index.build(side.iter_all_entries())
        assert side.index.count_of(0) == 1
        side.table.remove_value(1)
        side.buffer_entry(entry, now=2.0)
        assert side.index.count_of(0) == 1  # still owed to the state
        cleared = side.clear_purge_buffer()
        assert cleared == 1
        assert side.index.count_of(0) == 0
        assert side.purge_buffer == []

    def test_iter_all_entries_includes_buffer(self, side):
        entry = side.insert(tup(1), 1, now=1.0)
        side.table.remove_value(1)
        side.buffer_entry(entry, now=2.0)
        side.insert(tup(2), 2, now=3.0)
        assert len(list(side.iter_all_entries())) == 2


class TestDiscard:
    def test_discard_updates_counters(self, side):
        entry = side.insert(tup(1), 1, now=1.0)
        side.table.remove_value(1)
        side.discard_entry(entry)
        assert side.tuples_discarded == 1
