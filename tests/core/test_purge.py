"""Unit tests for the purge rules (paper equations (1))."""

import pytest

from repro.core.purge import PurgeResult, purge_side
from repro.core.state import JoinStateSide
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA_A = Schema.of("key", "a", name="A")
SCHEMA_B = Schema.of("key", "b", name="B")


@pytest.fixture
def sides():
    return (
        JoinStateSide(SCHEMA_A, "key", n_partitions=4, side_name="A"),
        JoinStateSide(SCHEMA_B, "key", n_partitions=4, side_name="B"),
    )


def fill(side, schema, *keys):
    for i, key in enumerate(keys):
        side.insert(Tuple(schema, (key, i)), key, now=float(i))


class TestPurgeRules:
    def test_purges_tuples_covered_by_opposite_punctuations(self, sides):
        side_a, side_b = sides
        fill(side_a, SCHEMA_A, 1, 1, 2, 3)
        side_b.add_punctuation(Punctuation.on_field(SCHEMA_B, "key", 1))
        result = purge_side(side_a, side_b, now=10.0)
        assert result.discarded == 2
        assert result.buffered == 0
        assert side_a.total_size == 2

    def test_own_punctuations_do_not_purge_own_state(self, sides):
        side_a, side_b = sides
        fill(side_a, SCHEMA_A, 1)
        side_a.add_punctuation(Punctuation.on_field(SCHEMA_A, "key", 1))
        result = purge_side(side_a, side_b, now=10.0)
        assert result.removed == 0

    def test_range_punctuation_purges_by_pattern(self, sides):
        side_a, side_b = sides
        fill(side_a, SCHEMA_A, 1, 5, 9, 20)
        side_b.add_punctuation(Punctuation.on_field(SCHEMA_B, "key", (0, 9)))
        result = purge_side(side_a, side_b, now=10.0)
        assert result.discarded == 3
        assert [e.join_value for e in side_a.table.iter_memory()] == [20]

    def test_scan_counts_whole_memory(self, sides):
        side_a, side_b = sides
        fill(side_a, SCHEMA_A, 1, 2, 3)
        side_b.add_punctuation(Punctuation.on_field(SCHEMA_B, "key", 99))
        result = purge_side(side_a, side_b, now=10.0)
        assert result.scanned == 3
        assert result.removed == 0

    def test_no_punctuations_short_circuits(self, sides):
        side_a, side_b = sides
        fill(side_a, SCHEMA_A, 1)
        result = purge_side(side_a, side_b, now=10.0)
        assert result.removed == 0


class TestPurgeBufferInteraction:
    def test_covered_tuple_moves_to_buffer_when_opposite_has_disk(self, sides):
        side_a, side_b = sides
        fill(side_a, SCHEMA_A, 1)
        fill(side_b, SCHEMA_B, 1)
        # Spill B's bucket for key 1 to disk.
        partition = side_b.table.partition_for(1)
        side_b.table.spill_partition(partition, now=5.0)
        side_b.add_punctuation(Punctuation.on_field(SCHEMA_B, "key", 1))
        result = purge_side(side_a, side_b, now=10.0)
        assert result.buffered == 1
        assert result.discarded == 0
        assert len(side_a.purge_buffer) == 1
        assert side_a.purge_buffer[0].dts == 10.0

    def test_unrelated_disk_partition_does_not_buffer(self, sides):
        side_a, side_b = sides
        fill(side_a, SCHEMA_A, 1)
        # A disk portion in a DIFFERENT bucket must not force buffering.
        other_key = 2  # 1 % 4 != 2 % 4
        fill(side_b, SCHEMA_B, other_key)
        side_b.table.spill_partition(side_b.table.partition_for(other_key), now=5.0)
        side_b.add_punctuation(Punctuation.on_field(SCHEMA_B, "key", 1))
        result = purge_side(side_a, side_b, now=10.0)
        assert result.discarded == 1
        assert result.buffered == 0


class TestPurgeResult:
    def test_accumulates(self):
        total = PurgeResult()
        total += PurgeResult(scanned=5, discarded=2, buffered=1)
        total += PurgeResult(scanned=3, discarded=1, buffered=0)
        assert total.scanned == 8
        assert total.removed == 4
