"""Unit tests for the sliding-window PJoin extension."""

import pytest

from repro.core.config import PJoinConfig
from repro.core.windowed import WindowedPJoin
from repro.errors import ConfigError
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA_A = Schema.of("key", "a", name="A")
SCHEMA_B = Schema.of("key", "b", name="B")


@pytest.fixture
def joined(engine, cheap_cost_model):
    def build(window_ms=10.0, config=None):
        join = WindowedPJoin(
            engine, cheap_cost_model, SCHEMA_A, SCHEMA_B, "key", "key",
            config=config, window_ms=window_ms,
        )
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        join.connect(sink)
        return join, sink

    return build


def push_at(engine, join, item, port, t):
    engine.schedule_at(t, lambda: join.push(item, port))


class TestValidation:
    def test_window_must_be_positive(self, joined):
        with pytest.raises(ConfigError):
            joined(window_ms=0)

    def test_memory_threshold_unsupported(self, joined):
        with pytest.raises(ConfigError):
            joined(config=PJoinConfig(memory_threshold=100))


class TestWindowSemantics:
    def test_joins_within_window(self, engine, joined):
        join, sink = joined(window_ms=10.0)
        push_at(engine, join, Tuple(SCHEMA_A, (1, 0), ts=0.0), 0, 0.0)
        push_at(engine, join, Tuple(SCHEMA_B, (1, 0), ts=5.0), 1, 5.0)
        engine.run()
        assert sink.tuple_count == 1

    def test_expires_outside_window(self, engine, joined):
        join, sink = joined(window_ms=10.0)
        push_at(engine, join, Tuple(SCHEMA_A, (1, 0), ts=0.0), 0, 0.0)
        push_at(engine, join, Tuple(SCHEMA_B, (1, 0), ts=50.0), 1, 50.0)
        engine.run()
        assert sink.tuple_count == 0
        assert join.tuples_expired == 1

    def test_punctuation_purge_still_works(self, engine, joined):
        join, sink = joined(window_ms=1000.0, config=PJoinConfig(purge_threshold=1))
        push_at(engine, join, Tuple(SCHEMA_A, (1, 0), ts=0.0), 0, 0.0)
        push_at(
            engine, join, Punctuation.on_field(SCHEMA_B, "key", 1, ts=1.0), 1, 1.0
        )
        engine.run()
        # Window would keep it for 1000 ms; the punctuation purges now.
        assert join.state_size(0) == 0


class TestEarlyPropagation:
    def test_window_expiry_enables_propagation(self, engine, joined):
        """A punctuation blocked by state tuples becomes propagable once
        the window expires them — the paper's 'early punctuation
        propagation' interaction."""
        config = PJoinConfig(
            purge_threshold=1000,  # purging never helps in this test
            propagation_mode="push_count",
            propagate_count_threshold=1,
        )
        join, sink = joined(window_ms=10.0, config=config)
        push_at(engine, join, Tuple(SCHEMA_A, (1, 0), ts=0.0), 0, 0.0)
        push_at(
            engine, join, Punctuation.on_field(SCHEMA_A, "key", 1, ts=1.0), 0, 1.0
        )
        engine.run()
        assert sink.punctuation_count == 0  # blocked by the state tuple
        # A much later B tuple expires the A tuple from the window ...
        push_at(engine, join, Tuple(SCHEMA_B, (1, 0), ts=100.0), 1, 100.0)
        # ... and the next punctuation triggers a propagation run that
        # finds the first one free.
        push_at(
            engine, join, Punctuation.on_field(SCHEMA_A, "key", 2, ts=101.0), 0, 101.0
        )
        engine.run()
        assert sink.punctuation_count >= 1
        assert join.tuples_expired == 1
