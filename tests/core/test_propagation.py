"""Unit tests for punctuation propagation (paper Theorem 1 / rules (2))."""

import pytest

from repro.core.propagation import run_propagation
from repro.core.state import JoinStateSide
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA_A = Schema.of("key", "a", name="A")
SCHEMA_B = Schema.of("key", "b", name="B")
OUT_SCHEMA = SCHEMA_A.concat(SCHEMA_B)
OUT_JOIN_INDICES = (0,)


@pytest.fixture
def sides():
    return [
        JoinStateSide(SCHEMA_A, "key", n_partitions=4, side_name="A"),
        JoinStateSide(SCHEMA_B, "key", n_partitions=4, side_name="B"),
    ]


def add_and_index(side, spec, ts=0.0):
    schema = side.schema
    pid = side.add_punctuation(Punctuation.on_field(schema, "key", spec, ts=ts))
    side.index.build(side.iter_all_entries())
    return pid


class TestPropagability:
    def test_punctuation_with_no_matching_state_propagates(self, sides):
        add_and_index(sides[0], 1)
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=5.0)
        assert result.propagated == 1
        assert len(sides[0].store) == 0

    def test_punctuation_with_matching_state_is_held(self, sides):
        sides[0].insert(Tuple(SCHEMA_A, (1, 0)), 1, now=0.0)
        add_and_index(sides[0], 1)
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=5.0)
        assert result.propagated == 0
        assert len(sides[0].store) == 1

    def test_propagates_after_matching_tuples_purged(self, sides):
        entry = sides[0].insert(Tuple(SCHEMA_A, (1, 0)), 1, now=0.0)
        add_and_index(sides[0], 1)
        sides[0].table.remove_value(1)
        sides[0].discard_entry(entry)
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=5.0)
        assert result.propagated == 1

    def test_purge_buffer_blocks_propagation(self, sides):
        entry = sides[0].insert(Tuple(SCHEMA_A, (1, 0)), 1, now=0.0)
        sides[0].table.remove_value(1)
        sides[0].buffer_entry(entry, now=1.0)
        add_and_index(sides[0], 1)
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=5.0)
        assert result.propagated == 0
        sides[0].clear_purge_buffer()
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=6.0)
        assert result.propagated == 1


class TestOutputPunctuations:
    def test_pattern_lands_on_the_output_join_column(self, sides):
        add_and_index(sides[0], 7)
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=5.0)
        out = result.emitted[0]
        assert out.schema == OUT_SCHEMA
        assert out.patterns[0].matches(7)
        # Every other column stays a wildcard so downstream operators
        # (e.g. group-by on the join attribute) can exploit it.
        assert all(p.is_wildcard for p in out.patterns[1:])
        assert out.ts == 5.0

    def test_emission_order_by_arrival_time(self, sides):
        add_and_index(sides[1], 2, ts=1.0)
        add_and_index(sides[0], 1, ts=2.0)
        add_and_index(sides[0], 3, ts=0.5)
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=5.0)
        matched = [p.patterns[0] for p in result.emitted]
        assert [m.value for m in matched] == [3, 2, 1]

    def test_checked_counts_live_punctuations(self, sides):
        sides[0].insert(Tuple(SCHEMA_A, (1, 0)), 1, now=0.0)
        add_and_index(sides[0], 1)
        add_and_index(sides[1], 9)
        result = run_propagation(sides, OUT_SCHEMA, OUT_JOIN_INDICES, now=5.0)
        assert result.checked == 2
        assert result.propagated == 1
