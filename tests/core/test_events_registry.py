"""Unit tests for framework events and the event-listener registry."""

import pytest

from repro.core.config import PJoinConfig
from repro.core.events import (
    ALL_EVENT_TYPES,
    DiskJoinActivateEvent,
    PropagateCountReachEvent,
    PropagateRequestEvent,
    PropagateTimeExpireEvent,
    PurgeThresholdReachEvent,
    StateFullEvent,
    StreamEmptyEvent,
)
from repro.core.registry import (
    EventListenerRegistry,
    RegistryEntry,
    default_registry_for,
    table1_registry,
)
from repro.errors import ConfigError


class TestEvents:
    def test_the_seven_section36_events_exist(self):
        names = {cls.__name__ for cls in ALL_EVENT_TYPES}
        assert names == {
            "StreamEmptyEvent",
            "PurgeThresholdReachEvent",
            "StateFullEvent",
            "DiskJoinActivateEvent",
            "PropagateRequestEvent",
            "PropagateTimeExpireEvent",
            "PropagateCountReachEvent",
        }

    def test_event_name_property(self):
        assert StreamEmptyEvent().event_name == "StreamEmptyEvent"

    def test_events_carry_payload(self):
        event = StateFullEvent(memory_tuples=100, threshold=90)
        assert event.memory_tuples == 100
        assert event.threshold == 90
        assert PropagateCountReachEvent(paired=True).paired


class TestRegistry:
    def test_register_and_lookup(self):
        registry = EventListenerRegistry()
        registry.register(PurgeThresholdReachEvent, ["state_purge"])
        event = PurgeThresholdReachEvent(punctuations_pending=3)
        assert registry.listeners_for(event) == ["state_purge"]
        assert registry.listeners_for(StreamEmptyEvent()) == []

    def test_listener_order_is_preserved(self):
        registry = EventListenerRegistry()
        registry.register(
            PropagateCountReachEvent, ["disk_join", "index_build", "propagate"]
        )
        assert registry.listeners_for(PropagateCountReachEvent()) == [
            "disk_join",
            "index_build",
            "propagate",
        ]

    def test_unknown_listener_name_rejected(self):
        registry = EventListenerRegistry()
        with pytest.raises(ConfigError, match="unknown listener"):
            registry.register(StreamEmptyEvent, ["reticulate_splines"])

    def test_condition_filters_events(self):
        registry = EventListenerRegistry()
        registry.register(
            StateFullEvent,
            ["state_relocation"],
            condition=lambda e: e.memory_tuples > 100,
        )
        assert registry.listeners_for(StateFullEvent(memory_tuples=50)) == []
        assert registry.listeners_for(StateFullEvent(memory_tuples=150)) == [
            "state_relocation"
        ]

    def test_unregister(self):
        registry = EventListenerRegistry()
        entry = registry.register(StreamEmptyEvent, ["disk_join"])
        registry.unregister(entry)
        assert registry.listeners_for(StreamEmptyEvent()) == []

    def test_replace_listeners_runtime_update(self):
        registry = EventListenerRegistry()
        registry.register(PropagateCountReachEvent, ["index_build", "propagate"])
        registry.replace_listeners(PropagateCountReachEvent, [])
        assert registry.listeners_for(PropagateCountReachEvent()) == []

    def test_replace_listeners_creates_missing_entry(self):
        registry = EventListenerRegistry()
        registry.replace_listeners(StreamEmptyEvent, ["disk_join"])
        assert registry.listeners_for(StreamEmptyEvent()) == ["disk_join"]

    def test_entries_returns_copy(self):
        registry = EventListenerRegistry()
        registry.register(StreamEmptyEvent, ["disk_join"])
        entries = registry.entries()
        entries.clear()
        assert len(registry) == 1

    def test_entry_applies_to_subclass_matching(self):
        entry = RegistryEntry(StreamEmptyEvent, ["disk_join"])
        assert entry.applies_to(StreamEmptyEvent())
        assert not entry.applies_to(StateFullEvent())


class TestTable1:
    def test_table1_wiring(self):
        """The paper's Table 1: lazy purge, relocation, disk join, and
        lazy index building coupled to count propagation."""
        registry = table1_registry()
        assert registry.listeners_for(PurgeThresholdReachEvent()) == ["state_purge"]
        assert registry.listeners_for(StateFullEvent()) == ["state_relocation"]
        assert registry.listeners_for(StreamEmptyEvent()) == ["disk_join"]
        assert registry.listeners_for(PropagateCountReachEvent()) == [
            "index_build",
            "propagate",
        ]


class TestDefaultRegistryFor:
    def test_lazy_index_couples_build_with_propagation(self):
        config = PJoinConfig(
            propagation_mode="push_count",
            index_building="lazy",
            disk_join_before_propagation=False,
        )
        registry = default_registry_for(config)
        assert registry.listeners_for(PropagateCountReachEvent()) == [
            "index_build",
            "propagate",
        ]

    def test_eager_index_decouples_build(self):
        config = PJoinConfig(
            propagation_mode="push_count",
            index_building="eager",
            disk_join_before_propagation=False,
        )
        registry = default_registry_for(config)
        assert registry.listeners_for(PropagateCountReachEvent()) == ["propagate"]

    def test_disk_join_before_propagation(self):
        config = PJoinConfig(propagation_mode="push_count")
        registry = default_registry_for(config)
        listeners = registry.listeners_for(PropagateCountReachEvent())
        assert listeners[0] == "disk_join"

    def test_time_mode_registers_time_event(self):
        config = PJoinConfig(propagation_mode="push_time")
        registry = default_registry_for(config)
        assert "propagate" in registry.listeners_for(PropagateTimeExpireEvent())
        assert registry.listeners_for(PropagateCountReachEvent()) == []

    def test_pull_mode_registers_request_event(self):
        config = PJoinConfig(propagation_mode="pull")
        registry = default_registry_for(config)
        assert "propagate" in registry.listeners_for(PropagateRequestEvent())

    def test_off_mode_registers_no_propagation(self):
        registry = default_registry_for(PJoinConfig(propagation_mode="off"))
        for event in (
            PropagateCountReachEvent(),
            PropagateTimeExpireEvent(),
            PropagateRequestEvent(),
        ):
            assert registry.listeners_for(event) == []

    def test_unused_event_type_exists(self):
        # DiskJoinActivateEvent is available for custom registries.
        registry = EventListenerRegistry()
        registry.register(DiskJoinActivateEvent, ["disk_join"])
        assert registry.listeners_for(DiskJoinActivateEvent(idle_ms=5.0)) == [
            "disk_join"
        ]
