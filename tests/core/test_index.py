"""Unit tests for the incrementally-maintained punctuation index."""

import pytest

from repro.core.index import PunctuationIndex
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore
from repro.storage.partition import StateEntry
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v")


@pytest.fixture
def store():
    return PunctuationStore(SCHEMA, "key")


@pytest.fixture
def index(store):
    return PunctuationIndex(store)


def entry(key, ts=0.0):
    return StateEntry(Tuple(SCHEMA, (key, 0), ts=ts), key, ats=ts)


def punct(spec, ts=0.0):
    return Punctuation.on_field(SCHEMA, "key", spec, ts=ts)


class TestBuild:
    def test_assigns_pid_and_counts(self, store, index):
        pid = store.add(punct(1))
        entries = [entry(1), entry(1), entry(2)]
        result = index.build(entries)
        assert result.scanned == 3
        assert result.newly_indexed == 2
        assert entries[0].pid == pid and entries[1].pid == pid
        assert entries[2].pid is None
        assert index.count_of(pid) == 2
        assert index.is_indexed(pid)

    def test_first_arrived_punctuation_wins(self, store, index):
        first = store.add(punct((0, 10)))
        second = store.add(punct(5))
        entries = [entry(5)]
        index.build(entries)
        assert entries[0].pid == first
        assert index.count_of(first) == 1
        assert index.count_of(second) == 0

    def test_incremental_only_fresh_punctuations_evaluated(self, store, index):
        store.add(punct(1))
        e_old = entry(1)
        index.build([e_old])
        # A new tuple (valid streams: it cannot match punct 1).
        e_new = entry(2)
        pid2 = store.add(punct(2))
        result = index.build([e_old, e_new])
        assert result.fresh_punctuations == 1
        assert result.unindexed == 1  # only e_new was evaluated
        assert e_new.pid == pid2

    def test_build_without_fresh_punctuations_indexes_nothing(self, store, index):
        store.add(punct(1))
        index.build([])
        entries = [entry(1)]
        result = index.build(entries)
        assert result.fresh_punctuations == 0
        assert entries[0].pid is None  # old punctuations never re-evaluated

    def test_build_runs_counter(self, store, index):
        index.build([])
        index.build([])
        assert index.build_runs == 2


class TestMaintenance:
    def test_discard_decrements_count(self, store, index):
        pid = store.add(punct(1))
        entries = [entry(1), entry(1)]
        index.build(entries)
        index.on_entry_discarded(entries[0])
        assert index.count_of(pid) == 1

    def test_discard_of_unindexed_entry_is_noop(self, store, index):
        index.on_entry_discarded(entry(1))

    def test_propagable_requires_indexed_and_zero_count(self, store, index):
        pid1 = store.add(punct(1))
        pid2 = store.add(punct(2))
        entries = [entry(1)]
        index.build(entries)
        propagable = dict(index.propagable())
        assert pid2 in propagable  # no matches at all
        assert pid1 not in propagable  # count 1
        index.on_entry_discarded(entries[0])
        assert pid1 in dict(index.propagable())

    def test_unindexed_punctuation_never_propagable(self, store, index):
        store.add(punct(1))  # never built
        assert index.propagable() == []

    def test_on_punctuation_removed_forgets(self, store, index):
        pid = store.add(punct(1))
        index.build([])
        store.remove(pid)
        index.on_punctuation_removed(pid)
        assert not index.is_indexed(pid)
        assert index.propagable() == []

    def test_pending_unindexed_counter(self, store, index):
        assert index.pending_unindexed_punctuations == 0
        store.add(punct(1))
        store.add(punct(2))
        assert index.pending_unindexed_punctuations == 2
        index.build([])
        assert index.pending_unindexed_punctuations == 0
