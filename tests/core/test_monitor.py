"""Unit tests for the monitor's threshold bookkeeping."""

from repro.core.config import PJoinConfig
from repro.core.events import (
    PropagateCountReachEvent,
    PropagateTimeExpireEvent,
    PurgeThresholdReachEvent,
    StateFullEvent,
)
from repro.core.monitor import Monitor


class TestPurgeThreshold:
    def test_eager_fires_on_every_punctuation(self):
        monitor = Monitor(PJoinConfig(purge_threshold=1))
        events = monitor.on_punctuation(paired=False)
        assert any(isinstance(e, PurgeThresholdReachEvent) for e in events)

    def test_lazy_fires_after_threshold(self):
        monitor = Monitor(PJoinConfig(purge_threshold=3))
        assert monitor.on_punctuation(False) == []
        assert monitor.on_punctuation(False) == []
        events = monitor.on_punctuation(False)
        assert len(events) == 1
        assert events[0].punctuations_pending == 3

    def test_counter_resets_after_firing(self):
        monitor = Monitor(PJoinConfig(purge_threshold=2))
        monitor.on_punctuation(False)
        monitor.on_punctuation(False)
        assert monitor.punctuations_since_purge == 0
        assert monitor.on_punctuation(False) == []

    def test_threshold_mutable_at_runtime(self):
        monitor = Monitor(PJoinConfig(purge_threshold=100))
        monitor.purge_threshold = 1
        assert monitor.on_punctuation(False) != []


class TestPropagationTriggers:
    def test_count_mode_fires_on_count(self):
        monitor = Monitor(
            PJoinConfig(
                propagation_mode="push_count", propagate_count_threshold=2,
                purge_threshold=100,
            )
        )
        assert monitor.on_punctuation(False) == []
        events = monitor.on_punctuation(False)
        assert isinstance(events[0], PropagateCountReachEvent)
        assert not events[0].paired

    def test_pairs_mode_counts_only_pairs(self):
        monitor = Monitor(
            PJoinConfig(
                propagation_mode="push_pairs", propagate_pairs_threshold=2,
                purge_threshold=100,
            )
        )
        assert monitor.on_punctuation(paired=False) == []
        assert monitor.on_punctuation(paired=True) == []
        events = monitor.on_punctuation(paired=True)
        assert isinstance(events[0], PropagateCountReachEvent)
        assert events[0].paired

    def test_purge_and_propagation_can_fire_together(self):
        monitor = Monitor(
            PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_count",
                propagate_count_threshold=1,
            )
        )
        events = monitor.on_punctuation(False)
        kinds = [type(e) for e in events]
        assert kinds == [PurgeThresholdReachEvent, PropagateCountReachEvent]

    def test_timer_event_only_in_time_mode(self):
        off = Monitor(PJoinConfig(propagation_mode="off"))
        assert off.on_propagation_timer(now=1.0) is None
        timed = Monitor(PJoinConfig(propagation_mode="push_time"))
        event = timed.on_propagation_timer(now=1.0)
        assert isinstance(event, PropagateTimeExpireEvent)
        assert timed.last_propagation_time == 1.0


class TestMemoryThreshold:
    def test_fires_at_threshold(self):
        monitor = Monitor(PJoinConfig(memory_threshold=10))
        assert monitor.on_insert(9) is None
        event = monitor.on_insert(10)
        assert isinstance(event, StateFullEvent)
        assert event.threshold == 10

    def test_disabled_without_threshold(self):
        monitor = Monitor(PJoinConfig(memory_threshold=None))
        assert monitor.on_insert(10**9) is None
