"""Unit tests for PJoin configuration validation."""

import pytest

from repro.core.config import PJoinConfig, eager_config, lazy_config
from repro.errors import ConfigError


class TestDefaults:
    def test_default_is_eager_with_propagation_off(self):
        config = PJoinConfig()
        assert config.purge_threshold == 1
        assert config.eager_purge
        assert config.propagation_mode == "off"

    def test_eager_and_lazy_helpers(self):
        assert eager_config().purge_threshold == 1
        assert lazy_config(100).purge_threshold == 100
        assert not lazy_config(100).eager_purge


class TestValidation:
    def test_purge_threshold_must_be_positive(self):
        with pytest.raises(ConfigError):
            PJoinConfig(purge_threshold=0)

    def test_index_building_values(self):
        PJoinConfig(index_building="eager")
        PJoinConfig(index_building="lazy")
        with pytest.raises(ConfigError):
            PJoinConfig(index_building="sometimes")

    def test_propagation_mode_values(self):
        for mode in ("off", "push_count", "push_time", "push_pairs", "pull"):
            PJoinConfig(propagation_mode=mode)
        with pytest.raises(ConfigError):
            PJoinConfig(propagation_mode="never")

    def test_propagation_thresholds(self):
        with pytest.raises(ConfigError):
            PJoinConfig(propagate_count_threshold=0)
        with pytest.raises(ConfigError):
            PJoinConfig(propagate_time_threshold_ms=0)
        with pytest.raises(ConfigError):
            PJoinConfig(propagate_pairs_threshold=0)

    def test_memory_threshold(self):
        PJoinConfig(memory_threshold=None)
        PJoinConfig(memory_threshold=100)
        with pytest.raises(ConfigError):
            PJoinConfig(memory_threshold=1)

    def test_disk_join_idle(self):
        with pytest.raises(ConfigError):
            PJoinConfig(disk_join_idle_ms=0)

    def test_n_partitions(self):
        with pytest.raises(ConfigError):
            PJoinConfig(n_partitions=0)

    def test_fault_policy_values(self):
        for policy in ("strict", "quarantine", "repair", "trust"):
            assert PJoinConfig(fault_policy=policy).fault_policy == policy
        with pytest.raises(ConfigError):
            PJoinConfig(fault_policy="maybe")

    def test_fault_policy_legacy_spellings_normalise(self):
        assert PJoinConfig(fault_policy="raise").fault_policy == "strict"
        assert PJoinConfig(fault_policy="count").fault_policy == "quarantine"
        assert PJoinConfig(fault_policy="off").fault_policy == "trust"


class TestOverrides:
    def test_with_overrides_returns_new_config(self):
        base = PJoinConfig()
        other = base.with_overrides(purge_threshold=50)
        assert other.purge_threshold == 50
        assert base.purge_threshold == 1

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            PJoinConfig().with_overrides(purge_threshold=-1)
