"""Tests of PJoin's disk-join component and its reactive scheduling."""

from collections import Counter

import pytest

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.sink import Sink
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.bursty import make_bursty
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset


def run_bursty_pjoin(config, seed=5, n=1200):
    smooth = generate_workload(
        n_tuples_per_stream=n, punct_spacing_a=12, punct_spacing_b=18,
        active_values=20, seed=seed,
    )
    workload = make_bursty(smooth, burst_ms=100.0, silence_ms=300.0, compress=0.5)
    plan = QueryPlan(cost_model=CostModel().scaled(0.05))
    join = PJoin(
        plan.engine, plan.cost_model,
        workload.schemas[0], workload.schemas[1], "key", "key", config=config,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    plan.run()
    expected = reference_join_multiset(
        workload.schedule_a, workload.schedule_b,
        workload.schemas[0], workload.schemas[1],
    )
    return join, sink, expected


class TestReactiveDiskJoin:
    def test_lulls_trigger_disk_joins_before_eos(self):
        join, sink, expected = run_bursty_pjoin(
            PJoinConfig(purge_threshold=4, memory_threshold=120,
                        disk_join_idle_ms=5.0)
        )
        assert join.spills > 0
        # At least one disk join ran reactively, i.e. before the final
        # end-of-stream flush.
        assert join.disk_join_runs >= 2
        assert join.events_dispatched.get("StreamEmptyEvent", 0) >= 1
        assert Counter(dict(sink.result_multiset())) == expected

    def test_disk_join_purges_disk_resident_tuples(self):
        join, _sink, _expected = run_bursty_pjoin(
            PJoinConfig(purge_threshold=4, memory_threshold=120,
                        disk_join_idle_ms=5.0)
        )
        # Reactive disk joins purge covered disk tuples and clear the
        # purge buffers, so the final state is small despite spilling.
        assert not join.sides[0].purge_buffer
        assert not join.sides[1].purge_buffer

    def test_no_disk_join_without_memory_pressure(self):
        join, sink, expected = run_bursty_pjoin(
            PJoinConfig(purge_threshold=4, memory_threshold=None)
        )
        assert join.spills == 0
        assert join.disk_join_runs == 0
        assert Counter(dict(sink.result_multiset())) == expected

    def test_repeated_full_disk_joins_stay_duplicate_free(self):
        """Multiple silences mean multiple full disk joins over the same
        surviving disk portions — the last-full-run memo must prevent
        re-emission of disk-disk pairs."""
        join, sink, expected = run_bursty_pjoin(
            PJoinConfig(purge_threshold=50, memory_threshold=80,
                        disk_join_idle_ms=5.0),
            n=900,
        )
        assert join.disk_join_runs >= 2
        assert Counter(dict(sink.result_multiset())) == expected


class TestPendingWorkDetection:
    def test_no_pending_work_on_fresh_join(self, engine, cheap_cost_model,
                                           ab_schemas):
        schema_a, schema_b = ab_schemas
        join = PJoin(engine, cheap_cost_model, schema_a, schema_b, "key", "key")
        assert not join._has_pending_disk_work()

    def test_spill_creates_pending_work(self, engine, cheap_cost_model,
                                        ab_schemas):
        from repro.tuples.tuple import Tuple

        schema_a, schema_b = ab_schemas
        join = PJoin(
            engine, cheap_cost_model, schema_a, schema_b, "key", "key",
            config=PJoinConfig(memory_threshold=2),
        )
        join.push(Tuple(schema_a, (1, 0)), 0)
        join.push(Tuple(schema_b, (1, 0)), 1)  # hits the threshold: spill
        join.push(Tuple(schema_b, (1, 1)), 1)  # new memory vs disk portion
        engine.run()
        assert join.spills > 0
