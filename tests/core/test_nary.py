"""Unit tests for the n-ary PJoin extension."""

from collections import Counter
from itertools import product

import pytest

from repro.core.config import PJoinConfig
from repro.core.nary import NaryPJoin
from repro.errors import ConfigError, OperatorError
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMAS = [
    Schema.of("key", "a", name="A"),
    Schema.of("key", "b", name="B"),
    Schema.of("key", "c", name="C"),
]


@pytest.fixture
def joined(engine, cheap_cost_model):
    def build(config=None):
        join = NaryPJoin(
            engine, cheap_cost_model, SCHEMAS, ["key", "key", "key"], config=config
        )
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        join.connect(sink)
        return join, sink

    return build


def tup(stream, key, v=0):
    return Tuple(SCHEMAS[stream], (key, v))


def punct(stream, spec):
    return Punctuation.on_field(SCHEMAS[stream], "key", spec)


class TestValidation:
    def test_needs_two_streams(self, engine, cheap_cost_model):
        with pytest.raises(OperatorError):
            NaryPJoin(engine, cheap_cost_model, SCHEMAS[:1], ["key"])

    def test_fields_must_match_schemas(self, engine, cheap_cost_model):
        with pytest.raises(OperatorError):
            NaryPJoin(engine, cheap_cost_model, SCHEMAS, ["key", "key"])

    def test_memory_threshold_unsupported(self, engine, cheap_cost_model):
        with pytest.raises(ConfigError):
            NaryPJoin(
                engine, cheap_cost_model, SCHEMAS, ["key"] * 3,
                config=PJoinConfig(memory_threshold=100),
            )

    @pytest.mark.parametrize("mode", ["push_time", "push_pairs", "pull"])
    def test_unsupported_propagation_modes_rejected(
        self, engine, cheap_cost_model, mode
    ):
        with pytest.raises(ConfigError, match="propagation modes"):
            NaryPJoin(
                engine, cheap_cost_model, SCHEMAS, ["key"] * 3,
                config=PJoinConfig(propagation_mode=mode),
            )


class TestJoining:
    def test_result_needs_a_match_from_every_stream(self, engine, joined):
        join, sink = joined()
        join.push(tup(0, 1, 10), 0)
        join.push(tup(1, 1, 20), 1)
        engine.run()
        assert sink.tuple_count == 0  # stream C has no key=1 yet
        join.push(tup(2, 1, 30), 2)
        engine.run()
        assert sink.tuple_count == 1
        assert sink.results[0].values == (1, 10, 1, 20, 1, 30)

    def test_cross_product_of_matches(self, engine, joined):
        join, sink = joined()
        for v in (1, 2):
            join.push(tup(0, 7, v), 0)
        for v in (3, 4):
            join.push(tup(1, 7, v), 1)
        join.push(tup(2, 7, 5), 2)
        engine.run()
        assert sink.tuple_count == 4  # 2 x 2 matches completed by C

    def test_matches_triple_nested_loop_reference(self, engine, joined):
        join, sink = joined()
        import random

        rng = random.Random(5)
        streams = [[], [], []]
        order = []
        for i in range(90):
            stream = rng.randrange(3)
            key = rng.randrange(4)
            t = tup(stream, key, i)
            streams[stream].append(t)
            order.append((t, stream))
        for t, stream in order:
            join.push(t, stream)
        engine.run()
        expected = Counter(
            a.values + b.values + c.values
            for a, b, c in product(*streams)
            if a["key"] == b["key"] == c["key"]
        )
        got = Counter(t.values for t in sink.results)
        assert got == expected


class TestPurging:
    def test_purge_requires_all_other_streams_covered(self, engine, joined):
        join, sink = joined(PJoinConfig(purge_threshold=1))
        join.push(tup(0, 1), 0)
        join.push(punct(1, 1), 1)  # only B covers key=1
        engine.run()
        assert join.state_size(0) == 1  # C may still deliver partners
        join.push(punct(2, 1), 2)  # now B and C both cover it
        engine.run()
        assert join.state_size(0) == 0
        assert join.tuples_purged == 1

    def test_on_the_fly_drop_requires_all_other_streams(self, engine, joined):
        join, sink = joined(PJoinConfig(purge_threshold=1))
        join.push(punct(1, 5), 1)
        join.push(tup(0, 5), 0)
        engine.run()
        assert join.tuples_dropped_on_fly == 0
        join.push(punct(2, 5), 2)
        join.push(tup(0, 5), 0)
        engine.run()
        assert join.tuples_dropped_on_fly == 1


class TestPropagation:
    def test_propagates_on_count_threshold(self, engine, joined):
        join, sink = joined(
            PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_count",
                propagate_count_threshold=1,
            )
        )
        join.push(punct(0, 3), 0)
        engine.run()
        assert sink.punctuation_count == 1
        out = sink.punctuations[0]
        # The output join column is constrained, everything else wildcard.
        (index,) = join._out_join_indices
        assert out.patterns[index].matches(3)
        assert sum(1 for p in out.patterns if not p.is_wildcard) == 1

    def test_eos_finishes(self, engine, joined):
        join, sink = joined(
            PJoinConfig(propagation_mode="push_count",
                        propagate_count_threshold=1000)
        )
        join.push(punct(0, 3), 0)
        for port in range(3):
            join.push(END_OF_STREAM, port)
        engine.run()
        assert sink.finished
        assert sink.punctuation_count == 1
