"""Unit and integration tests for the PJoin operator itself."""

from collections import Counter

import pytest

from repro.core.config import PJoinConfig
from repro.core.events import PropagateCountReachEvent, PurgeThresholdReachEvent
from repro.core.pjoin import PJoin
from repro.core.registry import EventListenerRegistry, table1_registry
from repro.errors import OperatorError, PunctuationError
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset

SCHEMA_A = Schema.of("key", "a", name="A")
SCHEMA_B = Schema.of("key", "b", name="B")


def make_pjoin(engine, cost_model, config=None, registry=None):
    return PJoin(
        engine, cost_model, SCHEMA_A, SCHEMA_B, "key", "key",
        config=config, registry=registry,
    )


@pytest.fixture
def joined(engine, cheap_cost_model):
    """Factory: build (join, sink) with a config."""

    def build(config=None, registry=None):
        join = make_pjoin(engine, cheap_cost_model, config, registry)
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        join.connect(sink)
        return join, sink

    return build


def a_tup(key, v=0):
    return Tuple(SCHEMA_A, (key, v))


def b_tup(key, v=0):
    return Tuple(SCHEMA_B, (key, v))


def a_punct(spec):
    return Punctuation.on_field(SCHEMA_A, "key", spec)


def b_punct(spec):
    return Punctuation.on_field(SCHEMA_B, "key", spec)


def run_full_workload(config, seed=3, n=1500, spacing=(10, 25)):
    """Run a generated workload through PJoin; return (join, sink, ref)."""
    workload = generate_workload(
        n_tuples_per_stream=n,
        punct_spacing_a=spacing[0],
        punct_spacing_b=spacing[1],
        seed=seed,
    )
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    join = PJoin(
        plan.engine, plan.cost_model,
        workload.schemas[0], workload.schemas[1], "key", "key", config=config,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    plan.run()
    ref = reference_join_multiset(
        workload.schedule_a, workload.schedule_b,
        workload.schemas[0], workload.schemas[1],
    )
    return join, sink, ref


class TestMemoryJoin:
    def test_joins_matching_tuples(self, engine, joined):
        join, sink = joined()
        join.push(a_tup(1, 10), 0)
        join.push(b_tup(1, 20), 1)
        engine.run()
        assert sink.results[0].values == (1, 10, 1, 20)

    def test_no_match_no_output(self, engine, joined):
        join, sink = joined()
        join.push(a_tup(1), 0)
        join.push(b_tup(2), 1)
        engine.run()
        assert sink.tuple_count == 0
        assert join.total_state_size() == 2


class TestPurging:
    def test_eager_purge_on_opposite_punctuation(self, engine, joined):
        join, sink = joined(PJoinConfig(purge_threshold=1))
        join.push(a_tup(1), 0)
        join.push(a_tup(2), 0)
        join.push(b_punct(1), 1)  # B promises no more key=1
        engine.run()
        assert join.tuples_purged == 1
        assert join.state_size(0) == 1

    def test_lazy_purge_waits_for_threshold(self, engine, joined):
        join, sink = joined(PJoinConfig(purge_threshold=3))
        for key in (1, 2, 3):
            join.push(a_tup(key), 0)
        join.push(b_punct(1), 1)
        join.push(b_punct(2), 1)
        engine.run()
        assert join.tuples_purged == 0
        join.push(b_punct(3), 1)
        engine.run()
        assert join.tuples_purged == 3
        assert join.purge_runs == 1

    def test_purged_results_already_emitted(self, engine, joined):
        join, sink = joined(PJoinConfig(purge_threshold=1))
        join.push(a_tup(1, 10), 0)
        join.push(b_tup(1, 20), 1)
        join.push(b_punct(1), 1)
        engine.run()
        assert sink.tuple_count == 1
        assert join.state_size(0) == 0


class TestOnTheFlyDrop:
    def test_covered_tuple_probes_then_drops(self, engine, joined):
        join, sink = joined(PJoinConfig(purge_threshold=1))
        join.push(a_tup(1, 10), 0)
        join.push(a_punct(1), 0)  # A promises no more key=1
        join.push(b_tup(1, 20), 1)  # still joins the stored A tuple
        engine.run()
        assert sink.tuple_count == 1
        assert join.tuples_dropped_on_fly == 1
        assert join.state_size(1) == 0

    def test_drop_disabled_keeps_tuple(self, engine, joined):
        join, sink = joined(
            PJoinConfig(purge_threshold=1, on_the_fly_drop=False)
        )
        join.push(a_punct(1), 0)
        join.push(b_tup(1), 1)
        engine.run()
        assert join.tuples_dropped_on_fly == 0
        assert join.state_size(1) == 1


class TestValidation:
    def test_punctuation_violation_raises_by_default(self, engine, joined):
        join, _sink = joined()
        join.push(a_punct(1), 0)
        join.push(a_tup(1), 0)  # violates A's own promise
        with pytest.raises(PunctuationError, match="after a punctuation"):
            engine.run()

    def test_quarantine_mode_drops_and_tallies(self, engine, joined):
        join, sink = joined(PJoinConfig(fault_policy="quarantine"))
        join.push(a_punct(1), 0)
        join.push(a_tup(1), 0)
        join.push(b_tup(1), 1)
        engine.run()
        assert join.punctuation_violations == 1
        assert sink.tuple_count == 0  # the offending tuple never joined

    def test_trust_mode_skips_check(self, engine, joined):
        join, _sink = joined(
            PJoinConfig(fault_policy="trust", on_the_fly_drop=False)
        )
        join.push(a_punct(1), 0)
        join.push(a_tup(1), 0)
        engine.run()
        assert join.punctuation_violations == 0


class TestPropagation:
    def test_push_count_propagates_covered_punctuations(self, engine, joined):
        join, sink = joined(
            PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_count",
                propagate_count_threshold=2,
            )
        )
        join.push(a_punct(1), 0)
        join.push(b_punct(1), 1)
        engine.run()
        assert sink.punctuation_count == 2
        out = sink.punctuations[0]
        assert out.schema == join.out_schema

    def test_pull_mode_waits_for_request(self, engine, joined):
        join, sink = joined(PJoinConfig(purge_threshold=1, propagation_mode="pull"))
        join.push(a_punct(1), 0)
        engine.run()
        assert sink.punctuation_count == 0
        join.request_propagation(requester="groupby")
        engine.run()
        assert sink.punctuation_count == 1

    def test_push_time_mode_uses_timer(self, engine, joined):
        join, sink = joined(
            PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_time",
                propagate_time_threshold_ms=50.0,
            )
        )
        join.push(a_punct(1), 0)
        engine.run(until=40.0)
        assert sink.punctuation_count == 0
        engine.run(until=200.0)
        assert sink.punctuation_count == 1
        # Finish the streams so the timer stops rearming.
        join.push(END_OF_STREAM, 0)
        join.push(END_OF_STREAM, 1)
        engine.run(until=1000.0)
        assert join.finished

    def test_propagation_blocked_by_matching_state(self, engine, joined):
        join, sink = joined(
            PJoinConfig(
                purge_threshold=100,  # never purge in this test
                propagation_mode="push_count",
                propagate_count_threshold=1,
            )
        )
        join.push(a_tup(1), 0)
        join.push(a_punct(1), 0)
        engine.run()
        # The A state still holds a key=1 tuple, so p cannot propagate.
        assert sink.punctuation_count == 0

    def test_eos_releases_remaining_punctuations(self, engine, joined):
        join, sink = joined(
            PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_count",
                propagate_count_threshold=1000,
            )
        )
        join.push(a_punct(1), 0)
        join.push(END_OF_STREAM, 0)
        join.push(END_OF_STREAM, 1)
        engine.run()
        assert sink.punctuation_count == 1
        assert sink.finished

    def test_live_duplicate_punctuation_dropped(self, engine, joined):
        """A duplicate arriving while the original is still live must not
        be stored — its index count would hit zero prematurely and break
        Theorem 1's premise."""
        join, sink = joined(
            PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_count",
                propagate_count_threshold=100,  # keep the original live
            )
        )
        join.push(a_punct(1), 0)
        join.push(a_punct(1), 0)  # duplicate promise while original live
        join.push(END_OF_STREAM, 0)
        join.push(END_OF_STREAM, 1)
        engine.run()
        assert join.sides[0].duplicate_punctuations == 1
        assert sink.punctuation_count == 1


class TestEventFramework:
    def test_table1_registry_accepted(self, engine, cheap_cost_model):
        config = PJoinConfig(
            purge_threshold=5,
            propagation_mode="push_count",
            propagate_count_threshold=10,
        )
        join = make_pjoin(engine, cheap_cost_model, config, table1_registry())
        sink = Sink(engine, cheap_cost_model)
        join.connect(sink)
        join.push(a_tup(1), 0)
        engine.run()
        assert join.events_dispatched == {}

    def test_events_dispatched_are_tallied(self, engine, joined):
        join, _sink = joined(PJoinConfig(purge_threshold=1))
        join.push(b_punct(1), 1)
        engine.run()
        assert join.events_dispatched.get("PurgeThresholdReachEvent") == 1

    def test_custom_registry_can_disable_purging(self, engine, cheap_cost_model):
        registry = EventListenerRegistry()  # no listeners at all
        join = make_pjoin(
            engine, cheap_cost_model, PJoinConfig(purge_threshold=1), registry
        )
        sink = Sink(engine, cheap_cost_model)
        join.connect(sink)
        join.push(a_tup(1), 0)
        join.push(b_punct(1), 1)
        engine.run()
        assert join.tuples_purged == 0  # event fired, nobody listened
        assert join.events_dispatched.get("PurgeThresholdReachEvent") == 1

    def test_unknown_component_in_dispatch_raises(self, engine, joined):
        join, _sink = joined()
        join._components.pop("state_purge")
        with pytest.raises(OperatorError, match="unknown component"):
            join.push(b_punct(1), 1)


class TestReconfigure:
    def test_thresholds_adjustable_at_runtime(self, engine, joined):
        join, _sink = joined(PJoinConfig(purge_threshold=100))
        join.reconfigure(purge_threshold=1)
        join.push(a_tup(1), 0)
        join.push(b_punct(1), 1)
        engine.run()
        assert join.tuples_purged == 1

    def test_structural_options_rejected(self, engine, joined):
        join, _sink = joined()
        with pytest.raises(OperatorError, match="cannot reconfigure"):
            join.reconfigure(n_partitions=64)


class TestEndToEndCorrectness:
    @pytest.mark.parametrize(
        "config",
        [
            PJoinConfig(purge_threshold=1),
            PJoinConfig(purge_threshold=7),
            PJoinConfig(purge_threshold=200),
            PJoinConfig(purge_threshold=1, on_the_fly_drop=False),
            PJoinConfig(purge_threshold=1, memory_threshold=120),
            PJoinConfig(purge_threshold=5, memory_threshold=60),
            PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_count",
                propagate_count_threshold=10,
            ),
            PJoinConfig(
                purge_threshold=3,
                index_building="eager",
                propagation_mode="push_pairs",
            ),
        ],
        ids=[
            "eager",
            "lazy7",
            "lazy200",
            "no-drop",
            "spill",
            "lazy-spill",
            "propagating",
            "pairs-eager-index",
        ],
    )
    def test_results_match_reference(self, config):
        join, sink, ref = run_full_workload(config)
        assert Counter(dict(sink.result_multiset())) == ref

    def test_propagated_punctuations_are_sound(self):
        """Theorem 1: no result emitted at/after a propagated punctuation
        may match it."""
        config = PJoinConfig(
            purge_threshold=1,
            propagation_mode="push_count",
            propagate_count_threshold=5,
        )
        join, sink, _ref = run_full_workload(config)
        assert sink.punctuation_count > 0
        # Merge results and punctuations in arrival order and verify.
        items = [(t, "tuple", tup) for t, tup in
                 zip(sink.tuple_arrival_times, sink.results)]
        items += [(t, "punct", p) for t, p in
                  zip(sink.punctuation_arrival_times, sink.punctuations)]
        items.sort(key=lambda x: x[0])
        seen_punctuations = []
        for _t, kind, item in items:
            if kind == "punct":
                seen_punctuations.append(item)
            else:
                for punct in seen_punctuations:
                    assert not punct.matches(item), (
                        f"result {item} violates propagated {punct}"
                    )

    def test_state_bounded_with_eager_purge(self):
        join, _sink, _ref = run_full_workload(PJoinConfig(purge_threshold=1))
        # Without purging the state would hold all 3000 input tuples;
        # eager purge keeps only the not-yet-punctuated tail.
        assert join.total_state_size() < 1200
        assert join.tuples_purged > 0
