"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out
        assert "figure14" in out
        assert "ablation_purge_sweep" in out


class TestFigures:
    def test_runs_named_figure(self, capsys):
        assert main(["figures", "figure6", "--scale", "0.06"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Shape checks" in out

    def test_unknown_name_fails(self, capsys):
        assert main(["figures", "figure99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_no_names_without_all_fails(self, capsys):
        assert main(["figures"]) == 2
        assert "nothing to run" in capsys.readouterr().err


class TestDemo:
    def test_demo_prints_comparison(self, capsys):
        code = main(
            ["demo", "--tuples", "400", "--spacing-a", "10",
             "--spacing-b", "10", "--purge-threshold", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PJoin-5" in out
        assert "XJoin" in out


class TestTrace:
    def test_trace_prints_timeline_and_stats(self, capsys):
        code = main(
            ["trace", "--tuples", "200", "--purge-threshold", "3",
             "--max-events", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "purge(" in out
        assert "join statistic" in out
        assert "results_produced" in out

    def test_trace_with_memory_threshold(self, capsys):
        code = main(
            ["trace", "--tuples", "300", "--memory-threshold", "40",
             "--max-events", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "relocate(" in out or "disk_join(" in out


class TestTraceExports:
    def test_trace_writes_chrome_jsonl_and_manifest(self, capsys, tmp_path):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        manifest = tmp_path / "manifest.json"
        code = main(
            ["trace", "--tuples", "200", "--purge-threshold", "3",
             "--max-events", "3",
             "--chrome", str(chrome), "--jsonl", str(jsonl),
             "--manifest", str(manifest)]
        )
        assert code == 0
        import json

        from repro.obs.export import validate_chrome_trace

        validate_chrome_trace(json.loads(chrome.read_text()))
        assert jsonl.read_text().strip()
        data = json.loads(manifest.read_text())
        assert data["counters"]["pjoin"]["probes"] > 0

    def test_trace_unknown_target_fails(self, capsys):
        assert main(["trace", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestMetrics:
    def test_metrics_prints_counter_registry(self, capsys):
        code = main(["metrics", "--tuples", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "probes" in out
        assert "tuples_purged" in out
        assert "disk.write_ops" in out

    def test_obs_aliases_work(self, capsys):
        assert main(["obs", "metrics", "--tuples", "100"]) == 0
        assert "probes" in capsys.readouterr().out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_obs_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["obs", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "trace" in out and "metrics" in out


class TestPlan:
    def test_list_presets(self, capsys):
        assert main(["plan", "--list"]) == 0
        out = capsys.readouterr().out
        assert "nary_drift" in out
        assert "nary_uniform" in out

    def test_runs_and_prints_planner_report(self, capsys):
        code = main(["plan", "nary_uniform", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "planner counters" in out
        assert "planner.reopt.count" in out
        assert "boundaries" in out
        assert "probe order" in out

    def test_check_verifies_equivalence(self, capsys):
        code = main(["plan", "nary_uniform", "--scale", "0.01", "--check"])
        assert code == 0
        assert "reproduced" in capsys.readouterr().out

    def test_explain_prints_candidate_tables(self, capsys):
        code = main(["plan", "nary_uniform", "--scale", "0.01", "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "candidates scored" in out

    def test_unknown_preset_fails(self, capsys):
        assert main(["plan", "nosuch"]) == 2
        assert "unknown planner preset" in capsys.readouterr().err


class TestFastpathFlag:
    def test_demo_runs_without_fastpath(self, capsys):
        code = main(
            ["demo", "--tuples", "200", "--no-fastpath"]
        )
        assert code == 0
        assert "XJoin" in capsys.readouterr().out

    def test_figures_planner_with_jobs_falls_back_to_serial(self, capsys):
        code = main(
            [
                "figures", "figure6", "--scale", "0.06",
                "--planner", "adaptive", "--jobs", "2",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "falling back to a serial run" in err
