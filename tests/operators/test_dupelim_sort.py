"""Unit tests for duplicate elimination and the punctuation sort."""

import pytest

from repro.operators.dupelim import DuplicateElimination, PunctuationSort
from repro.operators.sink import Sink
from repro.punctuations.patterns import make_range
from repro.punctuations.punctuation import Punctuation
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v", name="S")


@pytest.fixture
def dupelim_plan(engine, cheap_cost_model):
    op = DuplicateElimination(engine, cheap_cost_model, SCHEMA)
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    op.connect(sink)
    return op, sink


@pytest.fixture
def sort_plan(engine, cheap_cost_model):
    op = PunctuationSort(engine, cheap_cost_model, SCHEMA, "key")
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    op.connect(sink)
    return op, sink


def tup(key, v=0):
    return Tuple(SCHEMA, (key, v))


class TestDuplicateElimination:
    def test_suppresses_repeats(self, engine, dupelim_plan):
        op, sink = dupelim_plan
        for item in (tup(1), tup(1), tup(2), tup(1)):
            op.push(item)
        engine.run()
        assert sink.tuple_count == 2
        assert op.duplicates_suppressed == 2

    def test_distinguishes_all_fields(self, engine, dupelim_plan):
        op, sink = dupelim_plan
        op.push(tup(1, 0))
        op.push(tup(1, 1))
        engine.run()
        assert sink.tuple_count == 2

    def test_punctuation_purges_seen_set(self, engine, dupelim_plan):
        op, sink = dupelim_plan
        op.push(tup(1))
        op.push(tup(2))
        engine.run()
        assert op.state_size == 2
        op.push(Punctuation.on_field(SCHEMA, "key", 1))
        engine.run()
        assert op.state_size == 1
        assert op.entries_purged == 1

    def test_punctuation_passes_through(self, engine, dupelim_plan):
        op, sink = dupelim_plan
        op.push(Punctuation.on_field(SCHEMA, "key", 1))
        engine.run()
        assert sink.punctuation_count == 1

    def test_purge_does_not_reintroduce_duplicates_on_valid_streams(
        self, engine, dupelim_plan
    ):
        """After purging key=1 the stream may not send key=1 again
        (that would be a punctuation violation), so output stays
        duplicate-free."""
        op, sink = dupelim_plan
        op.push(tup(1))
        op.push(Punctuation.on_field(SCHEMA, "key", 1))
        op.push(tup(2))
        engine.run()
        assert [t["key"] for t in sink.results] == [1, 2]


class TestPunctuationSort:
    def below(self, bound):
        return Punctuation.on_field(
            SCHEMA, "key", make_range(None, bound, high_inclusive=False)
        )

    def test_blocks_until_punctuation(self, engine, sort_plan):
        op, sink = sort_plan
        op.push(tup(5))
        op.push(tup(3))
        engine.run()
        assert sink.tuple_count == 0
        assert op.buffered == 2

    def test_emits_sorted_prefix_below_frontier(self, engine, sort_plan):
        op, sink = sort_plan
        for key in (5, 3, 9, 1):
            op.push(tup(key))
        op.push(self.below(6))
        engine.run()
        assert [t["key"] for t in sink.results] == [1, 3, 5]
        assert op.buffered == 1

    def test_frontier_punctuation_forwarded(self, engine, sort_plan):
        op, sink = sort_plan
        op.push(self.below(6))
        engine.run()
        assert sink.punctuation_count == 1

    def test_successive_frontiers_yield_globally_sorted_output(
        self, engine, sort_plan
    ):
        """Bounded disorder: keys arrive shuffled within blocks of 4;
        after each block completes, a watermark below the next block's
        start is a *valid* promise and releases a sorted prefix."""
        op, sink = sort_plan
        import random

        rng = random.Random(7)
        keys = []
        for block in range(10):
            chunk = list(range(4 * block, 4 * block + 4))
            rng.shuffle(chunk)
            keys.extend(chunk)
            for key in chunk:
                op.push(tup(key))
            op.push(self.below(4 * block + 4))
        op.push(END_OF_STREAM)
        engine.run()
        assert [t["key"] for t in sink.results] == sorted(keys)
        assert keys != sorted(keys)  # the input really was disordered

    def test_constant_punctuation_absorbed(self, engine, sort_plan):
        op, sink = sort_plan
        op.push(tup(5))
        op.push(Punctuation.on_field(SCHEMA, "key", 5))
        engine.run()
        assert sink.tuple_count == 0
        assert op.punctuations_absorbed == 1

    def test_punctuation_constraining_other_field_absorbed(self, engine, sort_plan):
        op, sink = sort_plan
        op.push(tup(5))
        op.push(
            Punctuation.from_mapping(
                SCHEMA,
                {"key": make_range(None, 10, high_inclusive=False), "v": 1},
            )
        )
        engine.run()
        # v is constrained: key<10 tuples with other v values may still
        # arrive, so nothing may be released.
        assert sink.tuple_count == 0
        assert op.punctuations_absorbed == 1

    def test_eos_flushes_sorted(self, engine, sort_plan):
        op, sink = sort_plan
        for key in (5, 3, 9):
            op.push(tup(key))
        op.push(END_OF_STREAM)
        engine.run()
        assert [t["key"] for t in sink.results] == [3, 5, 9]
        assert op.buffered == 0

    def test_inclusive_frontier(self, engine, sort_plan):
        op, sink = sort_plan
        op.push(tup(5))
        op.push(
            Punctuation.on_field(SCHEMA, "key", make_range(None, 5))
        )
        engine.run()
        assert sink.tuple_count == 1


class TestWithDerivedWatermarks:
    def test_sort_downstream_of_ordered_arrival_derivation(
        self, engine, cheap_cost_model
    ):
        """An ordered source + derivation produces watermarks that let a
        sort on a *different* granularity stream its output."""
        from repro.punctuations.derive import (
            OrderedArrivalPunctuator,
            annotate_schedule,
        )
        from repro.streams.source import StreamSource

        # Keys arrive in blocks (0,0,1,1,2,2,...) — non-decreasing.
        schedule = [
            (float(i), Tuple(SCHEMA, (i // 2, 10 - i), ts=float(i)))
            for i in range(10)
        ]
        annotated = annotate_schedule(
            schedule, OrderedArrivalPunctuator(SCHEMA, "key")
        )
        op = PunctuationSort(engine, cheap_cost_model, SCHEMA, "key")
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        op.connect(sink)
        source = StreamSource(engine, annotated)
        source.connect(op)
        source.start()
        engine.run()
        keys = [t["key"] for t in sink.results]
        assert keys == sorted(keys)
        assert sink.tuple_count == 10
        # Some output streamed out before end-of-stream.
        assert any(t < sink.eos_time for t in sink.tuple_arrival_times)
