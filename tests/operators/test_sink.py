"""Unit tests for the sink."""

from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key")


def test_collects_tuples_and_punctuations(engine, cheap_cost_model):
    sink = Sink(engine, cheap_cost_model)
    sink.push(Tuple(SCHEMA, (1,)))
    sink.push(Punctuation.on_field(SCHEMA, "key", 1))
    sink.push(Tuple(SCHEMA, (2,)))
    engine.run()
    assert sink.tuple_count == 2
    assert sink.punctuation_count == 1
    assert len(sink.results) == 2
    assert len(sink.punctuations) == 1


def test_keep_items_false_keeps_counts_only(engine, cheap_cost_model):
    sink = Sink(engine, cheap_cost_model, keep_items=False)
    sink.push(Tuple(SCHEMA, (1,)))
    engine.run()
    assert sink.tuple_count == 1
    assert sink.results == []


def test_result_multiset_ignores_timestamps(engine, cheap_cost_model):
    sink = Sink(engine, cheap_cost_model)
    sink.push(Tuple(SCHEMA, (1,), ts=1.0))
    sink.push(Tuple(SCHEMA, (1,), ts=2.0))
    engine.run()
    assert sink.result_multiset() == {(1,): 2}


def test_cumulative_output_series(engine, cheap_cost_model):
    sink = Sink(engine, cheap_cost_model)
    engine.schedule(1.0, lambda: sink.push(Tuple(SCHEMA, (1,))))
    engine.schedule(3.0, lambda: sink.push(Tuple(SCHEMA, (2,))))
    engine.run()
    assert sink.cumulative_output_series() == [(1.0, 1), (3.0, 2)]


def test_eos_time_recorded(engine, cheap_cost_model):
    sink = Sink(engine, cheap_cost_model)
    engine.schedule(4.5, lambda: sink.push(END_OF_STREAM))
    engine.run()
    assert sink.eos_time == 4.5
