"""Unit tests for the timestamp duplicate-prevention rules."""

from repro.operators.dedupe import (
    already_produced,
    stage1_covered,
    stage2_covered,
    stage2_covered_one_side,
)
from repro.storage.partition import StateEntry
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key")


def entry(ats, dts=None):
    e = StateEntry(Tuple(SCHEMA, (1,), ts=ats), 1, ats=ats)
    if dts is not None:
        e.dts = dts
    return e


class TestStage1:
    def test_both_in_memory_is_covered(self):
        assert stage1_covered(entry(1.0), entry(2.0))

    def test_later_arrival_after_flush_not_covered(self):
        a = entry(1.0, dts=3.0)
        b = entry(5.0)
        assert not stage1_covered(a, b)
        assert not stage1_covered(b, a)  # symmetric

    def test_later_arrival_before_flush_covered(self):
        a = entry(1.0, dts=10.0)
        b = entry(5.0)
        assert stage1_covered(a, b)

    def test_boundary_flush_at_arrival_time_is_covered(self):
        # The flush happened inside the arriving tuple's own handling
        # step, after its probe — serialised handles guarantee it.
        a = entry(1.0, dts=5.0)
        b = entry(5.0)
        assert stage1_covered(a, b)


class TestStage2:
    def test_probe_after_flush_with_new_memory_tuple_covered(self):
        disk = entry(1.0, dts=2.0)
        mem = entry(3.0)
        assert stage2_covered_one_side(disk, mem, [5.0])

    def test_probe_before_flush_not_covered(self):
        disk = entry(1.0, dts=6.0)
        mem = entry(3.0)
        assert not stage2_covered_one_side(disk, mem, [5.0])

    def test_memory_tuple_older_than_previous_probe_not_covered(self):
        disk = entry(1.0, dts=2.0)
        mem = entry(3.0)
        # mem was in memory for the probe at 4.0, so the probe at 8.0
        # skipped it; only the 4.0 probe covers the pair.
        assert stage2_covered_one_side(disk, mem, [4.0, 8.0])
        # If the pair missed the first probe (disk flushed later), the
        # second probe does NOT cover it either (mem not new anymore).
        late_disk = entry(1.0, dts=5.0)
        assert not stage2_covered_one_side(late_disk, mem, [4.0, 8.0])

    def test_memory_tuple_flushed_before_probe_not_covered(self):
        disk = entry(1.0, dts=2.0)
        mem = entry(3.0, dts=4.0)
        assert not stage2_covered_one_side(disk, mem, [5.0])

    def test_two_sided_check(self):
        a = entry(1.0, dts=2.0)
        b = entry(3.0)
        assert stage2_covered(a, b, [5.0], [])
        assert stage2_covered(b, a, [], [5.0])
        assert not stage2_covered(a, b, [], [])


class TestAlreadyProduced:
    def test_stage1_or_stage2(self):
        mem_a, mem_b = entry(1.0), entry(2.0)
        assert already_produced(mem_a, mem_b, [], [])
        disk = entry(1.0, dts=2.0)
        late = entry(3.0)
        assert not already_produced(disk, late, [], [])
        assert already_produced(disk, late, [5.0], [])
