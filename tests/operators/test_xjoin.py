"""Unit and integration tests for the XJoin comparator."""

from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.operators.sink import Sink
from repro.operators.xjoin import XJoin
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.streams.source import StreamSource
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset


def build_xjoin(plan, workload, **kwargs):
    return XJoin(
        plan.engine,
        plan.cost_model,
        workload.schemas[0],
        workload.schemas[1],
        "key",
        "key",
        **kwargs,
    )


def run_workload(workload, **xjoin_kwargs):
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    join = build_xjoin(plan, workload, **xjoin_kwargs)
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    plan.run()
    return join, sink


def reference_of(workload):
    return reference_join_multiset(
        workload.schedule_a,
        workload.schedule_b,
        workload.schemas[0],
        workload.schemas[1],
    )


class TestValidation:
    def test_memory_threshold_bounds(self, engine, cheap_cost_model, ab_schemas):
        schema_a, schema_b = ab_schemas
        with pytest.raises(ConfigError):
            XJoin(engine, cheap_cost_model, schema_a, schema_b, "key", "key",
                  memory_threshold=1)
        with pytest.raises(ConfigError):
            XJoin(engine, cheap_cost_model, schema_a, schema_b, "key", "key",
                  disk_join_idle_ms=0)


class TestBasicJoin:
    def test_correct_without_memory_pressure(self):
        workload = generate_workload(
            n_tuples_per_stream=800, punct_spacing_a=20, punct_spacing_b=20, seed=1
        )
        join, sink = run_workload(workload)
        assert Counter(dict(sink.result_multiset())) == reference_of(workload)
        assert join.spills == 0

    def test_absorbs_punctuations(self, engine, cheap_cost_model, ab_schemas):
        schema_a, schema_b = ab_schemas
        join = XJoin(engine, cheap_cost_model, schema_a, schema_b, "key", "key")
        join.push(Punctuation.on_field(schema_a, "key", 1), 0)
        engine.run()
        assert join.punctuations_absorbed == 1
        assert join.total_state_size() == 0


class TestMemoryOverflow:
    @pytest.mark.parametrize("threshold", [50, 120, 400])
    def test_correct_under_memory_pressure(self, threshold):
        workload = generate_workload(
            n_tuples_per_stream=1200, punct_spacing_a=15, punct_spacing_b=25, seed=4
        )
        join, sink = run_workload(workload, memory_threshold=threshold)
        assert join.spills > 0
        assert Counter(dict(sink.result_multiset())) == reference_of(workload)

    def test_memory_stays_under_threshold_after_handling(self):
        workload = generate_workload(
            n_tuples_per_stream=600, punct_spacing_a=None, punct_spacing_b=None,
            seed=4,
        )
        join, _sink = run_workload(workload, memory_threshold=100)
        assert join.memory_state_size() < 100
        # Nothing is lost: total state equals all inserted tuples.
        assert join.total_state_size() == 1200

    def test_disk_accounting_matches_spills(self):
        workload = generate_workload(
            n_tuples_per_stream=600, punct_spacing_a=None, punct_spacing_b=None,
            seed=4,
        )
        join, _sink = run_workload(workload, memory_threshold=100)
        assert join.disk.write_ops == join.spills
        assert join.disk.tuples_written == join.total_state_size() - \
            join.memory_state_size()


class TestReactiveStage2:
    def test_stage2_runs_during_lulls_and_stays_correct(self, ab_schemas):
        """A bursty schedule with long silences activates stage 2."""
        schema_a, schema_b = ab_schemas
        schedule_a, schedule_b = [], []
        t = 0.0
        key = 0
        for burst in range(6):
            for i in range(60):
                t += 0.5
                key = (key + 1) % 10
                schedule_a.append((t, Tuple(schema_a, (key, burst), ts=t)))
                schedule_b.append((t, Tuple(schema_b, (key, burst), ts=t)))
            t += 500.0  # a silence far beyond the activation threshold
        plan = QueryPlan(cost_model=CostModel().scaled(0.01))
        join = XJoin(
            plan.engine, plan.cost_model, schema_a, schema_b, "key", "key",
            memory_threshold=60, disk_join_idle_ms=5.0,
        )
        sink = Sink(plan.engine, plan.cost_model, keep_items=True)
        join.connect(sink)
        plan.add_source(schedule_a, join, port=0)
        plan.add_source(schedule_b, join, port=1)
        plan.run()
        assert join.spills > 0
        assert join.stage2_runs > 0
        expected = reference_join_multiset(
            schedule_a, schedule_b, schema_a, schema_b
        )
        assert Counter(dict(sink.result_multiset())) == expected

    def test_no_stage2_without_disk_portions(self, engine, cheap_cost_model,
                                             ab_schemas):
        schema_a, schema_b = ab_schemas
        join = XJoin(engine, cheap_cost_model, schema_a, schema_b, "key", "key")
        sink = Sink(engine, cheap_cost_model)
        join.connect(sink)
        source_a = StreamSource(engine, [(1.0, Tuple(schema_a, (1, 1), ts=1.0))])
        source_a.connect(join, 0)
        source_b = StreamSource(engine, [])
        source_b.connect(join, 1)
        source_a.start()
        source_b.start()
        engine.run()
        assert join.stage2_runs == 0


class TestStateMetrics:
    def test_state_grows_monotonically_without_purging(self):
        workload = generate_workload(
            n_tuples_per_stream=500, punct_spacing_a=10, punct_spacing_b=10, seed=2
        )
        join, _sink = run_workload(workload)
        assert join.total_state_size() == 1000
        assert join.state_size(0) == 500
        assert join.state_size(1) == 500
