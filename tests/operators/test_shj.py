"""Unit tests for the symmetric hash join."""

import pytest

from repro.operators.shj import SymmetricHashJoin
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.tuples.item import END_OF_STREAM
from repro.tuples.tuple import Tuple


@pytest.fixture
def plan(engine, cheap_cost_model, ab_schemas):
    schema_a, schema_b = ab_schemas
    join = SymmetricHashJoin(
        engine, cheap_cost_model, schema_a, schema_b, "key", "key"
    )
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    join.connect(sink)
    return join, sink, schema_a, schema_b


def test_joins_matching_keys(engine, plan):
    join, sink, schema_a, schema_b = plan
    join.push(Tuple(schema_a, (1, 100)), 0)
    join.push(Tuple(schema_b, (1, 200)), 1)
    join.push(Tuple(schema_b, (2, 300)), 1)
    engine.run()
    assert sink.tuple_count == 1
    assert sink.results[0].values == (1, 100, 1, 200)


def test_is_symmetric(engine, plan):
    join, sink, schema_a, schema_b = plan
    join.push(Tuple(schema_b, (1, 200)), 1)
    join.push(Tuple(schema_a, (1, 100)), 0)
    engine.run()
    # Left values still come first regardless of arrival order.
    assert sink.results[0].values == (1, 100, 1, 200)


def test_many_to_many(engine, plan):
    join, sink, schema_a, schema_b = plan
    for v in (1, 2):
        join.push(Tuple(schema_a, (7, v)), 0)
    for v in (3, 4, 5):
        join.push(Tuple(schema_b, (7, v)), 1)
    engine.run()
    assert sink.tuple_count == 6


def test_state_never_shrinks(engine, plan):
    join, sink, schema_a, schema_b = plan
    for i in range(10):
        join.push(Tuple(schema_a, (i, i)), 0)
    join.push(Punctuation.on_field(schema_a, "key", 3), 0)
    engine.run()
    assert join.total_state_size() == 10


def test_absorbs_punctuations(engine, plan):
    join, sink, schema_a, schema_b = plan
    join.push(Punctuation.on_field(schema_a, "key", 1), 0)
    join.push(END_OF_STREAM, 0)
    join.push(END_OF_STREAM, 1)
    engine.run()
    assert sink.punctuation_count == 0
    assert sink.finished
