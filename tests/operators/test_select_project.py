"""Unit tests for selection and projection, incl. punctuation rules."""

import pytest

from repro.operators.project import Project
from repro.operators.select import Select
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "region", "value")


@pytest.fixture
def pipeline(engine, cheap_cost_model):
    """Build op→sink and return (op, sink, run)."""

    def build(op):
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        op.connect(sink)

        def run(*items):
            for item in items:
                op.push(item)
            engine.run()
            return sink

        return run

    return build


class TestSelect:
    def test_filters_tuples(self, engine, cheap_cost_model, pipeline):
        select = Select(engine, cheap_cost_model, lambda t: t["value"] > 5)
        run = pipeline(select)
        sink = run(
            Tuple(SCHEMA, (1, "n", 10)),
            Tuple(SCHEMA, (2, "n", 3)),
        )
        assert [t["key"] for t in sink.results] == [1]
        assert select.tuples_dropped == 1

    def test_passes_all_punctuations(self, engine, cheap_cost_model, pipeline):
        select = Select(engine, cheap_cost_model, lambda t: False)
        run = pipeline(select)
        sink = run(
            Tuple(SCHEMA, (1, "n", 10)),
            Punctuation.on_field(SCHEMA, "key", 1),
        )
        # The tuple is dropped but the promise still holds downstream.
        assert sink.tuple_count == 0
        assert sink.punctuation_count == 1


class TestProject:
    def test_projects_tuple_values(self, engine, cheap_cost_model, pipeline):
        project = Project(engine, cheap_cost_model, SCHEMA, ["value", "key"])
        run = pipeline(project)
        sink = run(Tuple(SCHEMA, (1, "n", 10)))
        assert sink.results[0].values == (10, 1)
        assert project.out_schema.field_names == ("value", "key")

    def test_punctuation_survives_when_dropped_fields_are_wildcards(
        self, engine, cheap_cost_model, pipeline
    ):
        project = Project(engine, cheap_cost_model, SCHEMA, ["key"])
        run = pipeline(project)
        sink = run(Punctuation.on_field(SCHEMA, "key", 7))
        assert sink.punctuation_count == 1
        out = sink.punctuations[0]
        assert out.schema.field_names == ("key",)
        assert out.pattern_for("key").matches(7)

    def test_punctuation_absorbed_when_dropped_field_constrained(
        self, engine, cheap_cost_model, pipeline
    ):
        project = Project(engine, cheap_cost_model, SCHEMA, ["key"])
        run = pipeline(project)
        # Constrains "region", which is projected away: the projected
        # promise would be too strong, so it must not be emitted.
        sink = run(
            Punctuation.from_mapping(SCHEMA, {"key": 7, "region": "north"})
        )
        assert sink.punctuation_count == 0
        assert project.punctuations_absorbed == 1
