"""Unit tests for the punctuation-aware group-by."""

import pytest

from repro.errors import OperatorError
from repro.operators.groupby import (
    GroupBy,
    avg_agg,
    count_agg,
    max_agg,
    sum_agg,
)
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("item_id", "bid_increase")


@pytest.fixture
def plan(engine, cheap_cost_model):
    groupby = GroupBy(
        engine,
        cheap_cost_model,
        SCHEMA,
        "item_id",
        [sum_agg("bid_increase"), count_agg()],
    )
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    groupby.connect(sink)
    return groupby, sink


def bid(item_id, inc):
    return Tuple(SCHEMA, (item_id, inc))


class TestBlockingBehaviour:
    def test_no_output_without_punctuation_or_eos(self, engine, plan):
        groupby, sink = plan
        groupby.push(bid(1, 10))
        groupby.push(bid(1, 5))
        engine.run()
        assert sink.tuple_count == 0
        assert groupby.open_groups == 1

    def test_punctuation_unblocks_matching_group(self, engine, plan):
        groupby, sink = plan
        groupby.push(bid(1, 10))
        groupby.push(bid(1, 5))
        groupby.push(bid(2, 7))
        groupby.push(Punctuation.on_field(SCHEMA, "item_id", 1))
        engine.run()
        assert sink.tuple_count == 1
        result = sink.results[0]
        assert result.as_dict() == {"item_id": 1, "sum_bid_increase": 15, "count": 2}
        assert groupby.open_groups == 1  # item 2 still open

    def test_punctuation_forwarded_on_output_schema(self, engine, plan):
        groupby, sink = plan
        groupby.push(bid(1, 10))
        groupby.push(Punctuation.on_field(SCHEMA, "item_id", 1))
        engine.run()
        assert sink.punctuation_count == 1
        out = sink.punctuations[0]
        assert out.schema is groupby.out_schema
        assert out.pattern_for("item_id").matches(1)

    def test_range_punctuation_closes_many_groups(self, engine, plan):
        groupby, sink = plan
        for item in range(5):
            groupby.push(bid(item, item))
        groupby.push(Punctuation.on_field(SCHEMA, "item_id", (0, 2)))
        engine.run()
        assert sink.tuple_count == 3
        assert groupby.open_groups == 2

    def test_punctuation_for_empty_group_emits_nothing_but_forwards(
        self, engine, plan
    ):
        groupby, sink = plan
        groupby.push(Punctuation.on_field(SCHEMA, "item_id", 99))
        engine.run()
        assert sink.tuple_count == 0
        assert sink.punctuation_count == 1

    def test_non_group_punctuation_absorbed(self, engine, plan):
        groupby, sink = plan
        groupby.push(bid(1, 10))
        groupby.push(
            Punctuation.from_mapping(SCHEMA, {"item_id": 1, "bid_increase": 5})
        )
        engine.run()
        assert sink.tuple_count == 0
        assert groupby.punctuations_absorbed == 1

    def test_eos_flushes_open_groups(self, engine, plan):
        groupby, sink = plan
        groupby.push(bid(1, 10))
        groupby.push(bid(2, 1))
        groupby.push(END_OF_STREAM)
        engine.run()
        assert sink.tuple_count == 2
        assert groupby.open_groups == 0
        assert sink.finished


class TestAggregates:
    def test_avg_and_max(self, engine, cheap_cost_model):
        groupby = GroupBy(
            engine,
            cheap_cost_model,
            SCHEMA,
            "item_id",
            [avg_agg("bid_increase"), max_agg("bid_increase")],
        )
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        groupby.connect(sink)
        groupby.push(bid(1, 10))
        groupby.push(bid(1, 20))
        groupby.push(Punctuation.on_field(SCHEMA, "item_id", 1))
        engine.run()
        result = sink.results[0]
        assert result["avg_bid_increase"] == 15.0
        assert result["max_bid_increase"] == 20

    def test_needs_at_least_one_aggregate(self, engine, cheap_cost_model):
        with pytest.raises(OperatorError):
            GroupBy(engine, cheap_cost_model, SCHEMA, "item_id", [])

    def test_custom_output_names(self, engine, cheap_cost_model):
        groupby = GroupBy(
            engine,
            cheap_cost_model,
            SCHEMA,
            "item_id",
            [sum_agg("bid_increase", "total")],
        )
        assert groupby.out_schema.field_names == ("item_id", "total")
