"""Unit tests for the sliding-window join."""

import pytest

from repro.errors import ConfigError
from repro.operators.sink import Sink
from repro.operators.window_join import SlidingWindowJoin
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_window_join_multiset
from repro.query.plan import QueryPlan


@pytest.fixture
def plan(engine, cheap_cost_model, ab_schemas):
    schema_a, schema_b = ab_schemas
    join = SlidingWindowJoin(
        engine, cheap_cost_model, schema_a, schema_b, "key", "key", window_ms=10.0
    )
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    join.connect(sink)
    return join, sink, schema_a, schema_b


def test_window_must_be_positive(engine, cheap_cost_model, ab_schemas):
    schema_a, schema_b = ab_schemas
    with pytest.raises(ConfigError):
        SlidingWindowJoin(
            engine, cheap_cost_model, schema_a, schema_b, "key", "key", window_ms=0
        )


def test_joins_within_window(engine, plan):
    join, sink, schema_a, schema_b = plan
    engine.schedule(0.0, lambda: join.push(Tuple(schema_a, (1, 1), ts=0.0), 0))
    engine.schedule(5.0, lambda: join.push(Tuple(schema_b, (1, 2), ts=5.0), 1))
    engine.run()
    assert sink.tuple_count == 1


def test_expires_outside_window(engine, plan):
    join, sink, schema_a, schema_b = plan
    engine.schedule(0.0, lambda: join.push(Tuple(schema_a, (1, 1), ts=0.0), 0))
    engine.schedule(50.0, lambda: join.push(Tuple(schema_b, (1, 2), ts=50.0), 1))
    engine.run()
    assert sink.tuple_count == 0
    assert join.tuples_expired >= 1


def test_state_is_bounded_by_window(engine, plan):
    join, sink, schema_a, schema_b = plan
    for i in range(100):
        t = float(i)
        engine.schedule(t, lambda t=t, i=i: join.push(Tuple(schema_a, (1, i), ts=t), 0))
        engine.schedule(
            t + 0.5, lambda t=t, i=i: join.push(Tuple(schema_b, (1, i), ts=t + 0.5), 1)
        )
    engine.run()
    # ~10ms window at 1 tuple/ms/stream: state stays around 20, not 200.
    assert join.total_state_size() < 40


def test_absorbs_punctuations(engine, plan):
    join, sink, schema_a, schema_b = plan
    join.push(Punctuation.on_field(schema_a, "key", 1), 0)
    engine.run()
    assert join.punctuations_absorbed == 1
    assert sink.punctuation_count == 0


def test_matches_reference_window_join():
    """Full-run comparison against the oracle window join."""
    workload = generate_workload(
        n_tuples_per_stream=800, punct_spacing_a=None, punct_spacing_b=None, seed=3
    )
    plan = QueryPlan(cost_model=CostModel().scaled(0.001))
    join = SlidingWindowJoin(
        plan.engine,
        plan.cost_model,
        workload.schemas[0],
        workload.schemas[1],
        "key",
        "key",
        window_ms=25.0,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    plan.run()
    expected = reference_window_join_multiset(
        workload.schedule_a,
        workload.schedule_b,
        workload.schemas[0],
        workload.schemas[1],
        window_ms=25.0,
    )
    got = sink.result_multiset()
    assert got == dict(expected)
