"""Unit tests for the single-server operator model.

These exercise the execution semantics every operator relies on:
serialised processing with virtual costs, queueing under saturation,
end-of-stream coordination over multiple ports, delivery timestamps and
background tasks.
"""

import pytest

from repro.errors import OperatorError
from repro.operators.base import Operator
from repro.operators.sink import Sink
from repro.sim.costs import CostModel
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("x")


class FixedCostOperator(Operator):
    """Forwards every tuple downstream at a fixed per-item cost."""

    def __init__(self, engine, cost, n_inputs=1):
        super().__init__(engine, CostModel(), n_inputs=n_inputs)
        self.cost = cost
        self.handled_at = []
        self.idle_calls = 0

    def handle(self, item, port):
        self.handled_at.append(self.engine.now)
        self.emit(item)
        return self.cost

    def on_idle(self):
        self.idle_calls += 1


def tup(i, ts=0.0):
    return Tuple(SCHEMA, (i,), ts=ts)


class TestProcessing:
    def test_items_are_serialised_by_cost(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=5.0)
        sink = Sink(engine, cheap_cost_model)
        op.connect(sink)
        engine.schedule(0.0, lambda: op.push(tup(0)))
        engine.schedule(1.0, lambda: op.push(tup(1)))
        engine.run()
        # Second item waits for the first to complete at t=5.
        assert op.handled_at == [0.0, 5.0]
        assert sink.tuple_arrival_times == [5.0, 10.0]

    def test_busy_time_accumulates(self, engine):
        op = FixedCostOperator(engine, cost=5.0)
        op.push(tup(0))
        op.push(tup(1))
        engine.run()
        assert op.busy_time == 10.0

    def test_queue_length_peaks_under_burst(self, engine):
        op = FixedCostOperator(engine, cost=10.0)
        for i in range(5):
            op.push(tup(i))
        assert op.max_queue_length == 4  # first started immediately
        engine.run()
        assert op.queue_length == 0

    def test_zero_cost_burst_does_not_recurse(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=0.0)
        sink = Sink(engine, cheap_cost_model)
        op.connect(sink)
        for i in range(5000):  # would overflow the stack if recursive
            op.push(tup(i))
        engine.run()
        assert sink.tuple_count == 5000

    def test_negative_cost_rejected(self, engine):
        class Bad(Operator):
            def handle(self, item, port):
                return -1.0

        op = Bad(engine, CostModel())
        with pytest.raises(OperatorError, match="negative"):
            op.push(tup(0))

    def test_emitted_items_stamped_with_completion_time(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=5.0)
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        op.connect(sink)
        op.push(tup(0, ts=0.0))
        engine.run()
        assert sink.results[0].ts == 5.0


class TestEndOfStream:
    def test_single_port_finishes(self, engine):
        op = FixedCostOperator(engine, cost=1.0)
        op.push(tup(0))
        op.push(END_OF_STREAM)
        engine.run()
        assert op.finished

    def test_waits_for_all_ports(self, engine):
        op = FixedCostOperator(engine, cost=1.0, n_inputs=2)
        op.push(END_OF_STREAM, port=0)
        engine.run()
        assert not op.finished
        op.push(END_OF_STREAM, port=1)
        engine.run()
        assert op.finished

    def test_eos_propagates_downstream(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=1.0)
        sink = Sink(engine, cheap_cost_model)
        op.connect(sink)
        op.push(END_OF_STREAM)
        engine.run()
        assert sink.finished

    def test_push_after_finish_rejected(self, engine):
        op = FixedCostOperator(engine, cost=1.0)
        op.push(END_OF_STREAM)
        engine.run()
        with pytest.raises(OperatorError, match="finished"):
            op.push(tup(0))

    def test_on_finish_cost_and_emissions(self, engine, cheap_cost_model):
        class Flusher(FixedCostOperator):
            def on_finish(self):
                self.emit(tup(99))
                return 3.0

        op = Flusher(engine, cost=1.0)
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        op.connect(sink)
        op.push(END_OF_STREAM)
        engine.run()
        assert sink.tuple_count == 1
        assert sink.results[0].ts == 3.0
        assert sink.finished


class TestWiring:
    def test_connect_returns_downstream(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=1.0)
        sink = Sink(engine, cheap_cost_model)
        assert op.connect(sink) is sink

    def test_double_connect_rejected(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=1.0)
        op.connect(Sink(engine, cheap_cost_model))
        with pytest.raises(OperatorError):
            op.connect(Sink(engine, cheap_cost_model))

    def test_bad_port_rejected(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=1.0)
        with pytest.raises(OperatorError):
            op.connect(Sink(engine, cheap_cost_model), port=3)
        with pytest.raises(OperatorError):
            op.push(tup(0), port=7)

    def test_zero_inputs_rejected(self, engine):
        with pytest.raises(OperatorError):
            FixedCostOperator(engine, cost=1.0, n_inputs=0)


class TestIdleAndBackground:
    def test_on_idle_called_when_queue_drains(self, engine):
        op = FixedCostOperator(engine, cost=1.0)
        op.push(tup(0))
        engine.run()
        assert op.idle_calls >= 1

    def test_background_task_occupies_operator(self, engine, cheap_cost_model):
        op = FixedCostOperator(engine, cost=1.0)
        sink = Sink(engine, cheap_cost_model)
        op.connect(sink)
        op.emit(tup(42))
        op.run_background_task(5.0)
        assert op._busy
        engine.run()
        assert sink.tuple_arrival_times == [5.0]

    def test_background_task_while_busy_rejected(self, engine):
        op = FixedCostOperator(engine, cost=10.0)
        op.push(tup(0))
        with pytest.raises(OperatorError):
            op.run_background_task(1.0)
