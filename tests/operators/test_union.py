"""Unit tests for the union operator's punctuation semantics."""

import pytest

from repro.errors import OperatorError
from repro.operators.sink import Sink
from repro.operators.union import Union
from repro.punctuations.punctuation import Punctuation
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v", name="S")


@pytest.fixture
def plan(engine, cheap_cost_model):
    union = Union(engine, cheap_cost_model, SCHEMA, n_inputs=2)
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    union.connect(sink)
    return union, sink


def test_needs_two_inputs(engine, cheap_cost_model):
    with pytest.raises(OperatorError):
        Union(engine, cheap_cost_model, SCHEMA, n_inputs=1)


def test_tuples_pass_through_from_all_inputs(engine, plan):
    union, sink = plan
    union.push(Tuple(SCHEMA, (1, 0)), 0)
    union.push(Tuple(SCHEMA, (2, 0)), 1)
    engine.run()
    assert sink.tuple_count == 2


def test_punctuation_held_until_all_inputs_promise(engine, plan):
    union, sink = plan
    union.push(Punctuation.on_field(SCHEMA, "key", 7), 0)
    engine.run()
    assert sink.punctuation_count == 0
    assert union.pending_punctuations == 1
    union.push(Punctuation.on_field(SCHEMA, "key", 7), 1)
    engine.run()
    assert sink.punctuation_count == 1
    assert union.pending_punctuations == 0
    assert union.punctuations_merged == 1


def test_repeated_promise_from_same_input_does_not_release(engine, plan):
    union, sink = plan
    union.push(Punctuation.on_field(SCHEMA, "key", 7), 0)
    union.push(Punctuation.on_field(SCHEMA, "key", 7), 0)
    engine.run()
    assert sink.punctuation_count == 0


def test_soundness_late_tuple_from_other_input(engine, plan):
    """The whole point: input 1 can still deliver key=7 after input 0
    punctuated it, so nothing was promised downstream yet."""
    union, sink = plan
    union.push(Punctuation.on_field(SCHEMA, "key", 7), 0)
    union.push(Tuple(SCHEMA, (7, 1)), 1)
    engine.run()
    assert sink.punctuation_count == 0
    assert sink.tuple_count == 1


def test_non_constant_punctuations_absorbed(engine, plan):
    union, sink = plan
    union.push(Punctuation.on_field(SCHEMA, "key", (1, 5)), 0)
    union.push(
        Punctuation.from_mapping(SCHEMA, {"key": 1, "v": 2}), 0
    )
    engine.run()
    assert union.punctuations_absorbed == 2
    assert sink.punctuation_count == 0


def test_three_way_union(engine, cheap_cost_model):
    union = Union(engine, cheap_cost_model, SCHEMA, n_inputs=3)
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    union.connect(sink)
    for port in (0, 1):
        union.push(Punctuation.on_field(SCHEMA, "key", 7), port)
    engine.run()
    assert sink.punctuation_count == 0
    union.push(Punctuation.on_field(SCHEMA, "key", 7), 2)
    engine.run()
    assert sink.punctuation_count == 1


def test_eos_requires_all_inputs(engine, plan):
    union, sink = plan
    union.push(END_OF_STREAM, 0)
    engine.run()
    assert not sink.finished
    union.push(END_OF_STREAM, 1)
    engine.run()
    assert sink.finished
