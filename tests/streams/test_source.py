"""Unit tests for stream sources."""

import pytest

from repro.errors import OperatorError, SimulationError
from repro.operators.sink import Sink
from repro.streams.source import StreamSource
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key")


def schedule_of(*times):
    return [(t, Tuple(SCHEMA, (i,), ts=t)) for i, t in enumerate(times)]


class TestStreamSource:
    def test_replays_schedule_in_time(self, engine, cheap_cost_model):
        sink = Sink(engine, cheap_cost_model)
        source = StreamSource(engine, schedule_of(1.0, 3.0, 7.0))
        source.connect(sink)
        source.start()
        engine.run()
        assert sink.tuple_count == 3
        assert sink.tuple_arrival_times == [1.0, 3.0, 7.0]
        assert source.items_sent == 3

    def test_sends_eos_after_last_item(self, engine, cheap_cost_model):
        sink = Sink(engine, cheap_cost_model)
        source = StreamSource(engine, schedule_of(1.0))
        source.connect(sink)
        source.start()
        engine.run()
        assert sink.finished
        assert sink.eos_time == 1.0

    def test_empty_schedule_sends_only_eos(self, engine, cheap_cost_model):
        sink = Sink(engine, cheap_cost_model)
        source = StreamSource(engine, [])
        source.connect(sink)
        source.start()
        engine.run()
        assert sink.finished
        assert sink.tuple_count == 0

    def test_decreasing_times_rejected(self, engine, cheap_cost_model):
        sink = Sink(engine, cheap_cost_model)
        source = StreamSource(engine, schedule_of(5.0, 1.0))
        source.connect(sink)
        source.start()
        with pytest.raises(SimulationError, match="decreases"):
            engine.run()

    def test_must_connect_before_start(self, engine):
        source = StreamSource(engine, [])
        with pytest.raises(OperatorError):
            source.start()

    def test_double_connect_rejected(self, engine, cheap_cost_model):
        sink = Sink(engine, cheap_cost_model)
        source = StreamSource(engine, [])
        source.connect(sink)
        with pytest.raises(OperatorError):
            source.connect(sink)

    def test_double_start_rejected(self, engine, cheap_cost_model):
        sink = Sink(engine, cheap_cost_model)
        source = StreamSource(engine, [])
        source.connect(sink)
        source.start()
        with pytest.raises(SimulationError):
            source.start()

    def test_lazy_scheduling_keeps_heap_small(self, engine, cheap_cost_model):
        sink = Sink(engine, cheap_cost_model)
        source = StreamSource(engine, schedule_of(*[float(i) for i in range(1000)]))
        source.connect(sink)
        source.start()
        # Only the next delivery is pending, not the whole schedule.
        assert engine.pending_events <= 2
        engine.run()
        assert sink.tuple_count == 1000
