"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.schedule(5.0, lambda: fired.append("late"))
        engine.schedule(2.0, lambda: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_times(self, engine):
        times = []
        engine.schedule(2.0, lambda: times.append(engine.now))
        engine.schedule(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [2.0, 5.0]

    def test_fifo_among_equal_times(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append("first"))
        engine.schedule(1.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self, engine):
        engine.schedule(5.0, lambda: engine.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_can_schedule_more_events(self, engine):
        fired = []

        def chain(n):
            fired.append(engine.now)
            if n:
                engine.schedule(1.0, lambda: chain(n - 1))

        engine.schedule(1.0, lambda: chain(3))
        engine.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]


class TestRun:
    def test_run_until_stops_before_later_events(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_run_resumes_after_until(self, engine):
        fired = []
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        engine.run()
        assert fired == [10]

    def test_run_until_advances_clock_past_last_event(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run(until=42.0)
        assert engine.now == 42.0

    def test_max_events_guards_against_loops(self, engine):
        def loop():
            engine.schedule(0.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=100)

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_reentrant_run_rejected(self, engine):
        def inner():
            engine.run()

        engine.schedule(1.0, inner)
        with pytest.raises(SimulationError, match="re-entrant"):
            engine.run()

    def test_events_executed_counter(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.events_executed == 2
