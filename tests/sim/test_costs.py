"""Unit tests for the cost model."""

import pytest

from repro.errors import ConfigError
from repro.sim.costs import CostModel


class TestValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(tuple_overhead=-1.0)

    def test_zero_costs_allowed(self):
        CostModel(tuple_overhead=0.0)


class TestCompositeFormulas:
    def test_probe_cost_scales_with_occupancy_and_matches(self):
        cm = CostModel(probe_per_candidate=1.0, emit_result=0.5)
        assert cm.probe_cost(10, 4) == 10 * 1.0 + 4 * 0.5

    def test_purge_cost(self):
        cm = CostModel(purge_fixed=5.0, purge_scan_per_tuple=0.1)
        assert cm.purge_cost(100) == 5.0 + 10.0

    def test_index_build_cost(self):
        cm = CostModel(index_fixed=1.0, index_scan_per_tuple=0.1, index_eval=0.01)
        assert cm.index_build_cost(100, 20, 5) == pytest.approx(1.0 + 10.0 + 1.0)

    def test_propagation_cost(self):
        cm = CostModel(propagate_fixed=1.0, propagate_per_punct=0.1)
        assert cm.propagation_cost(10) == pytest.approx(2.0)

    def test_disk_costs_include_seek(self):
        cm = CostModel(disk_seek=10.0, disk_write_per_tuple=0.1, disk_read_per_tuple=0.2)
        assert cm.disk_write_cost(10) == pytest.approx(11.0)
        assert cm.disk_read_cost(10) == pytest.approx(12.0)

    def test_disk_costs_zero_for_zero_tuples(self):
        cm = CostModel()
        assert cm.disk_write_cost(0) == 0.0
        assert cm.disk_read_cost(0) == 0.0


class TestDerivedModels:
    def test_scaled_multiplies_everything(self):
        cm = CostModel().scaled(2.0)
        base = CostModel()
        assert cm.tuple_overhead == 2 * base.tuple_overhead
        assert cm.disk_seek == 2 * base.disk_seek

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ConfigError):
            CostModel().scaled(-1.0)

    def test_with_overrides(self):
        cm = CostModel().with_overrides(insert=123.0)
        assert cm.insert == 123.0
        assert cm.tuple_overhead == CostModel().tuple_overhead

    def test_as_dict_round_trips(self):
        cm = CostModel()
        assert CostModel(**cm.as_dict()) == cm
