"""Unit tests for the execution tracer."""

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.sink import Sink
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.sim.trace import TraceEvent, Tracer, trace_hook
from repro.workloads.generator import generate_workload


class TestTracer:
    def test_records_events(self):
        tracer = Tracer()
        tracer.record(1.0, "op", "purge", removed=3)
        assert len(tracer) == 1
        event = tracer.events[0]
        assert event.source == "op"
        assert event.details == {"removed": 3}

    def test_action_filter(self):
        tracer = Tracer(actions=["purge"])
        tracer.record(1.0, "op", "purge")
        tracer.record(2.0, "op", "propagate")
        assert tracer.counts() == {"purge": 1}

    def test_limit_drops_excess(self):
        tracer = Tracer(limit=2)
        for i in range(5):
            tracer.record(float(i), "op", "x")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_render(self):
        tracer = Tracer()
        tracer.record(1.0, "op", "purge", removed=3)
        out = tracer.render()
        assert "purge" in out and "removed=3" in out

    def test_render_truncates(self):
        tracer = Tracer()
        for i in range(10):
            tracer.record(float(i), "op", "x")
        assert "more" in tracer.render(max_events=3)

    def test_trace_hook_none_without_tracer(self, engine):
        assert trace_hook(engine) is None

    def test_repr_formats_numbers(self):
        event = TraceEvent(1.0, "op", "purge", {"n": 1234})
        assert "1,234" in repr(event)


class TestPJoinTracing:
    def test_pjoin_records_component_activity(self):
        workload = generate_workload(
            n_tuples_per_stream=400, punct_spacing_a=10, punct_spacing_b=10,
            seed=2,
        )
        plan = QueryPlan(cost_model=CostModel().scaled(0.01))
        plan.engine.tracer = Tracer()
        join = PJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
            config=PJoinConfig(
                purge_threshold=1,
                propagation_mode="push_count",
                propagate_count_threshold=10,
            ),
        )
        sink = Sink(plan.engine, plan.cost_model)
        join.connect(sink)
        plan.add_source(workload.schedule_a, join, port=0)
        plan.add_source(workload.schedule_b, join, port=1)
        plan.run()
        counts = plan.engine.tracer.counts()
        assert counts.get("purge", 0) == join.purge_runs
        assert counts.get("propagate", 0) == join.propagation_runs
        assert counts.get("event", 0) > 0

    def test_tracing_off_by_default(self):
        workload = generate_workload(n_tuples_per_stream=100, seed=2)
        plan = QueryPlan(cost_model=CostModel().scaled(0.01))
        join = PJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
        )
        sink = Sink(plan.engine, plan.cost_model)
        join.connect(sink)
        plan.add_source(workload.schedule_a, join, port=0)
        plan.add_source(workload.schedule_b, join, port=1)
        plan.run()  # simply must not blow up without a tracer
        assert not hasattr(plan.engine, "tracer")
