"""Unit tests for arrival processes."""

import random

import pytest

from repro.errors import WorkloadError
from repro.sim.arrivals import (
    FixedIntervalProcess,
    PoissonProcess,
    poisson_tuple_spacing,
)


class TestPoissonProcess:
    def test_gaps_are_positive(self):
        process = PoissonProcess(2.0, random.Random(1))
        assert all(process.next_gap() > 0 for _ in range(100))

    def test_mean_roughly_matches(self):
        process = PoissonProcess(2.0, random.Random(1))
        gaps = [process.next_gap() for _ in range(20_000)]
        assert 1.9 < sum(gaps) / len(gaps) < 2.1

    def test_seeded_determinism(self):
        a = PoissonProcess(2.0, random.Random(7))
        b = PoissonProcess(2.0, random.Random(7))
        assert [a.next_gap() for _ in range(10)] == [b.next_gap() for _ in range(10)]

    def test_invalid_mean_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonProcess(0.0)


class TestFixedIntervalProcess:
    def test_constant_gaps(self):
        process = FixedIntervalProcess(3.0)
        assert [process.next_gap() for _ in range(3)] == [3.0, 3.0, 3.0]

    def test_invalid_interval_rejected(self):
        with pytest.raises(WorkloadError):
            FixedIntervalProcess(-1.0)


class TestPoissonTupleSpacing:
    def test_at_least_one_tuple(self):
        rng = random.Random(3)
        assert all(poisson_tuple_spacing(1.0, rng) >= 1 for _ in range(200))

    def test_mean_roughly_matches(self):
        rng = random.Random(3)
        spacings = [poisson_tuple_spacing(40.0, rng) for _ in range(20_000)]
        assert 38 < sum(spacings) / len(spacings) < 42

    def test_integer_spacing(self):
        rng = random.Random(3)
        assert isinstance(poisson_tuple_spacing(10.0, rng), int)

    def test_invalid_mean_rejected(self):
        with pytest.raises(WorkloadError):
            poisson_tuple_spacing(0, random.Random(1))
