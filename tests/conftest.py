"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture
def cheap_cost_model() -> CostModel:
    """A cost model with tiny per-item costs, for logic-focused tests.

    Costs stay non-zero so event ordering still exercises the
    single-server queueing path.
    """
    return CostModel().scaled(0.001)


@pytest.fixture
def ab_schemas():
    """Two small typed stream schemas joined on ``key``."""
    schema_a = Schema([Field("key", int), Field("a_val", int)], name="A")
    schema_b = Schema([Field("key", int), Field("b_val", int)], name="B")
    return schema_a, schema_b


def make_tuple(schema: Schema, *values, ts: float = 0.0) -> Tuple:
    """Terse tuple construction for tests."""
    return Tuple(schema, values, ts=ts)
