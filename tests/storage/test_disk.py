"""Unit tests for the simulated disk."""

import pytest

from repro.errors import StorageError
from repro.sim.costs import CostModel
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(CostModel(disk_seek=10.0, disk_write_per_tuple=0.1,
                                   disk_read_per_tuple=0.2))


class TestAccounting:
    def test_write_returns_cost_and_tallies(self, disk):
        cost = disk.write(100)
        assert cost == pytest.approx(20.0)
        assert disk.write_ops == 1
        assert disk.tuples_written == 100
        assert disk.total_write_time == pytest.approx(20.0)

    def test_read_returns_cost_and_tallies(self, disk):
        cost = disk.read(50)
        assert cost == pytest.approx(20.0)
        assert disk.read_ops == 1
        assert disk.tuples_read == 50

    def test_zero_tuples_is_free_and_not_an_op(self, disk):
        assert disk.write(0) == 0.0
        assert disk.read(0) == 0.0
        assert disk.write_ops == 0 and disk.read_ops == 0

    def test_negative_counts_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.write(-1)
        with pytest.raises(StorageError):
            disk.read(-1)

    def test_total_io_time(self, disk):
        disk.write(10)
        disk.read(10)
        assert disk.total_io_time == pytest.approx(
            disk.total_write_time + disk.total_read_time
        )

    def test_stats_snapshot(self, disk):
        disk.write(5)
        stats = disk.stats()
        assert stats["write_ops"] == 1
        assert stats["tuples_written"] == 5
        assert "total_io_time" in stats
