"""Unit tests for the partitioned hash table."""

import pytest

from repro.errors import StorageError
from repro.storage.hash_table import PartitionedHashTable, stable_hash
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v")


def tup(key, ts=0.0):
    return Tuple(SCHEMA, (key, 0), ts=ts)


class TestStableHash:
    def test_int_hashes_to_itself(self):
        assert stable_hash(42) == 42

    def test_bool_is_not_confused_with_large_int_hash(self):
        assert stable_hash(True) == 1
        assert stable_hash(False) == 0

    def test_string_hash_is_deterministic(self):
        # CRC-32 of repr("abc") — must not vary with PYTHONHASHSEED.
        assert stable_hash("abc") == stable_hash("abc")
        assert isinstance(stable_hash("abc"), int)


class TestPartitionedHashTable:
    def test_needs_at_least_one_partition(self):
        with pytest.raises(StorageError):
            PartitionedHashTable(0)

    def test_insert_places_by_stable_hash(self):
        table = PartitionedHashTable(4)
        table.insert(tup(5), 5, ats=1.0)
        assert table.partitions[5 % 4].memory_count == 1
        assert table.memory_count == 1
        assert table.total_inserted == 1

    def test_probe_returns_occupancy_and_matches(self):
        table = PartitionedHashTable(4)
        table.insert(tup(1), 1, ats=1.0)
        table.insert(tup(5), 5, ats=2.0)  # same bucket as 1 (mod 4)
        occupancy, matches = table.probe(1)
        assert occupancy == 2
        assert [e.join_value for e in matches] == [1]

    def test_remove_value(self):
        table = PartitionedHashTable(4)
        table.insert(tup(1), 1, ats=1.0)
        table.insert(tup(1), 1, ats=2.0)
        removed = table.remove_value(1)
        assert len(removed) == 2
        assert table.memory_count == 0

    def test_remove_where(self):
        table = PartitionedHashTable(4)
        for key in range(8):
            table.insert(tup(key), key, ats=float(key))
        removed = table.remove_where(lambda e: e.join_value % 2 == 0)
        assert len(removed) == 4
        assert table.memory_count == 4

    def test_largest_memory_partition(self):
        table = PartitionedHashTable(4)
        for _ in range(3):
            table.insert(tup(0), 0, ats=1.0)
        table.insert(tup(1), 1, ats=1.0)
        assert table.largest_memory_partition() is table.partitions[0]

    def test_spill_partition_updates_counts(self):
        table = PartitionedHashTable(4)
        table.insert(tup(0), 0, ats=1.0)
        table.insert(tup(4), 4, ats=1.0)
        moved = table.spill_partition(table.partitions[0], now=9.0)
        assert moved == 2
        assert table.memory_count == 0
        assert table.disk_count == 2
        assert table.total_count == 2

    def test_partitions_with_disk(self):
        table = PartitionedHashTable(4)
        table.insert(tup(0), 0, ats=1.0)
        assert table.partitions_with_disk() == []
        table.spill_partition(table.partitions[0], now=1.0)
        assert table.partitions_with_disk() == [table.partitions[0]]

    def test_iterators_cover_memory_and_disk(self):
        table = PartitionedHashTable(4)
        table.insert(tup(0), 0, ats=1.0)
        table.spill_partition(table.partitions[0], now=1.0)
        table.insert(tup(1), 1, ats=2.0)
        assert len(list(table.iter_memory())) == 1
        assert len(list(table.iter_disk())) == 1
        assert len(list(table.iter_all())) == 2
        assert len(table) == 2
