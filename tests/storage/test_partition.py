"""Unit tests for state entries and hybrid partitions."""

import math

from repro.storage.partition import HybridPartition, StateEntry
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v")


def entry(key, ts=0.0):
    return StateEntry(Tuple(SCHEMA, (key, 0), ts=ts), key, ats=ts)


class TestStateEntry:
    def test_starts_in_memory_with_null_pid(self):
        e = entry(1)
        assert e.in_memory
        assert e.dts == math.inf
        assert e.pid is None

    def test_leaves_memory_when_dts_set(self):
        e = entry(1)
        e.dts = 5.0
        assert not e.in_memory


class TestHybridPartition:
    def test_insert_and_probe(self):
        part = HybridPartition(0)
        e1, e2 = entry(1), entry(1)
        part.insert(e1)
        part.insert(e2)
        part.insert(entry(2))
        assert part.memory_count == 3
        assert part.probe_memory(1) == [e1, e2]
        assert part.probe_memory(99) == []

    def test_last_insert_ts_tracks_newest(self):
        part = HybridPartition(0)
        part.insert(entry(1, ts=3.0))
        part.insert(entry(2, ts=1.0))
        assert part.last_insert_ts == 3.0

    def test_remove_memory_value(self):
        part = HybridPartition(0)
        part.insert(entry(1))
        part.insert(entry(1))
        part.insert(entry(2))
        removed = part.remove_memory_value(1)
        assert len(removed) == 2
        assert part.memory_count == 1
        assert part.probe_memory(1) == []

    def test_remove_memory_where(self):
        part = HybridPartition(0)
        part.insert(entry(1, ts=1.0))
        part.insert(entry(1, ts=5.0))
        removed = part.remove_memory_where(lambda e: e.ats < 2.0)
        assert len(removed) == 1
        assert part.memory_count == 1
        assert len(part.probe_memory(1)) == 1

    def test_spill_moves_everything_and_stamps_dts(self):
        part = HybridPartition(0)
        part.insert(entry(1))
        part.insert(entry(2))
        moved = part.spill(now=7.0)
        assert moved == 2
        assert part.memory_count == 0
        assert part.disk_count == 2
        assert all(e.dts == 7.0 for e in part.iter_disk())
        assert part.last_spill_ts == 7.0

    def test_empty_spill_does_not_update_spill_ts(self):
        part = HybridPartition(0)
        assert part.spill(now=7.0) == 0
        assert part.last_spill_ts == -math.inf

    def test_remove_disk_where(self):
        part = HybridPartition(0)
        part.insert(entry(1))
        part.insert(entry(2))
        part.spill(now=1.0)
        removed = part.remove_disk_where(lambda e: e.join_value == 1)
        assert len(removed) == 1
        assert part.disk_count == 1

    def test_probe_history_records(self):
        part = HybridPartition(0)
        part.record_probe(1.0)
        part.record_probe(2.0)
        assert part.probe_history == [1.0, 2.0]

    def test_total_count(self):
        part = HybridPartition(0)
        part.insert(entry(1))
        part.spill(now=1.0)
        part.insert(entry(2))
        assert part.total_count == 2
