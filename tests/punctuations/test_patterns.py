"""Unit and property tests for the five pattern kinds and their algebra.

The key property (paper Section 2.2): the "and" of any two punctuation
patterns is again a pattern, and matching distributes over conjunction:
``match(v, p ∧ q) ⇔ match(v, p) ∧ match(v, q)``.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PatternError
from repro.punctuations.patterns import (
    EMPTY,
    WILDCARD,
    Constant,
    EnumerationList,
    Pattern,
    Range,
    make_enumeration,
    make_range,
    pattern_from_spec,
)


class TestWildcardAndEmpty:
    def test_wildcard_matches_everything(self):
        assert WILDCARD.matches(0)
        assert WILDCARD.matches("x")
        assert WILDCARD.matches(None)

    def test_empty_matches_nothing(self):
        assert not EMPTY.matches(0)
        assert not EMPTY.matches(None)

    def test_wildcard_is_conjunction_identity(self):
        pattern = Constant(3)
        assert WILDCARD.conjoin(pattern) == pattern
        assert pattern.conjoin(WILDCARD) == pattern

    def test_empty_is_conjunction_absorber(self):
        pattern = Constant(3)
        assert EMPTY.conjoin(pattern) is EMPTY
        assert pattern.conjoin(EMPTY) is EMPTY

    def test_flags(self):
        assert WILDCARD.is_wildcard and not WILDCARD.is_empty
        assert EMPTY.is_empty and not EMPTY.is_wildcard


class TestConstant:
    def test_matches_only_its_value(self):
        assert Constant(5).matches(5)
        assert not Constant(5).matches(6)

    def test_conjoin_equal_constants(self):
        assert Constant(5).conjoin(Constant(5)) == Constant(5)

    def test_conjoin_different_constants_is_empty(self):
        assert Constant(5).conjoin(Constant(6)) is EMPTY

    def test_conjoin_with_containing_range(self):
        assert Constant(5).conjoin(Range(0, 10)) == Constant(5)

    def test_conjoin_with_excluding_range(self):
        assert Constant(50).conjoin(Range(0, 10)) is EMPTY

    def test_cannot_wrap_pattern(self):
        with pytest.raises(PatternError):
            Constant(WILDCARD)


class TestRange:
    def test_closed_bounds(self):
        rng = Range(1, 5)
        assert rng.matches(1) and rng.matches(5)
        assert not rng.matches(0) and not rng.matches(6)

    def test_open_bounds(self):
        rng = Range(1, 5, low_inclusive=False, high_inclusive=False)
        assert not rng.matches(1) and not rng.matches(5)
        assert rng.matches(2)

    def test_unbounded_low(self):
        rng = Range(None, 5)
        assert rng.matches(-1000)
        assert not rng.matches(6)

    def test_unbounded_high(self):
        rng = Range(5, None)
        assert rng.matches(1000)
        assert not rng.matches(4)

    def test_uncomparable_value_does_not_match(self):
        assert not Range(1, 5).matches("x")

    def test_degenerate_construction_rejected(self):
        with pytest.raises(PatternError):
            Range(5, 1)
        with pytest.raises(PatternError):
            Range(5, 5)  # must be a Constant; use make_range
        with pytest.raises(PatternError):
            Range(None, None)  # must be the wildcard

    def test_uncomparable_bounds_rejected(self):
        with pytest.raises(PatternError):
            Range(1, "x")

    def test_conjoin_overlapping(self):
        assert Range(1, 10).conjoin(Range(5, 20)) == Range(5, 10)

    def test_conjoin_disjoint_is_empty(self):
        assert Range(1, 3).conjoin(Range(5, 9)) is EMPTY

    def test_conjoin_touching_closed_bounds_is_constant(self):
        assert Range(1, 5).conjoin(Range(5, 9)) == Constant(5)

    def test_conjoin_touching_open_bound_is_empty(self):
        left = Range(1, 5, high_inclusive=False)
        assert left.conjoin(Range(5, 9)) is EMPTY

    def test_conjoin_respects_inclusivity_at_shared_bound(self):
        left = Range(1, 5)
        right = Range(1, 5, low_inclusive=False)
        merged = left.conjoin(right)
        assert not merged.matches(1)
        assert merged.matches(5)

    def test_make_range_normalises(self):
        assert make_range(None, None) is WILDCARD
        assert make_range(5, 5) == Constant(5)
        assert make_range(5, 5, high_inclusive=False) is EMPTY
        assert make_range(7, 3) is EMPTY
        assert isinstance(make_range(1, 5), Range)

    def test_repr_notation(self):
        assert repr(Range(1, 5)) == "[1, 5]"
        assert repr(Range(1, 5, False, False)) == "(1, 5)"
        assert "-inf" in repr(Range(None, 5))


class TestEnumerationList:
    def test_matches_members_only(self):
        pattern = EnumerationList(frozenset({1, 2, 3}))
        assert pattern.matches(2)
        assert not pattern.matches(4)

    def test_unhashable_value_does_not_match(self):
        assert not EnumerationList(frozenset({1, 2})).matches([1])

    def test_small_sets_rejected(self):
        with pytest.raises(PatternError):
            EnumerationList(frozenset())
        with pytest.raises(PatternError):
            EnumerationList(frozenset({1}))

    def test_conjoin_enumerations_intersects(self):
        a = EnumerationList(frozenset({1, 2, 3}))
        b = EnumerationList(frozenset({2, 3, 4}))
        assert a.conjoin(b) == EnumerationList(frozenset({2, 3}))

    def test_conjoin_to_singleton_normalises_to_constant(self):
        a = EnumerationList(frozenset({1, 2}))
        b = EnumerationList(frozenset({2, 3}))
        assert a.conjoin(b) == Constant(2)

    def test_conjoin_disjoint_is_empty(self):
        a = EnumerationList(frozenset({1, 2}))
        b = EnumerationList(frozenset({3, 4}))
        assert a.conjoin(b) is EMPTY

    def test_conjoin_with_range_filters(self):
        pattern = EnumerationList(frozenset({1, 5, 9}))
        assert pattern.conjoin(Range(2, 9)) == EnumerationList(frozenset({5, 9}))

    def test_make_enumeration_normalises(self):
        assert make_enumeration([]) is EMPTY
        assert make_enumeration([7]) == Constant(7)
        assert make_enumeration([1, 2]) == EnumerationList(frozenset({1, 2}))


class TestPatternFromSpec:
    def test_star_and_none_are_wildcard(self):
        assert pattern_from_spec("*") is WILDCARD
        assert pattern_from_spec(None) is WILDCARD

    def test_tuple_is_range(self):
        assert pattern_from_spec((1, 5)) == Range(1, 5)
        assert pattern_from_spec((None, 5)) == Range(None, 5)

    def test_bad_tuple_rejected(self):
        with pytest.raises(PatternError):
            pattern_from_spec((1, 2, 3))

    def test_set_is_enumeration(self):
        assert pattern_from_spec({1, 2}) == EnumerationList(frozenset({1, 2}))

    def test_scalar_is_constant(self):
        assert pattern_from_spec(7) == Constant(7)
        assert pattern_from_spec("abc") == Constant("abc")

    def test_pattern_passes_through(self):
        pattern = Constant(1)
        assert pattern_from_spec(pattern) is pattern


# ---------------------------------------------------------------------------
# Property-based algebra tests
# ---------------------------------------------------------------------------

values = st.integers(min_value=-50, max_value=50)


@st.composite
def patterns(draw) -> Pattern:
    kind = draw(st.sampled_from(["wildcard", "empty", "constant", "range", "enum"]))
    if kind == "wildcard":
        return WILDCARD
    if kind == "empty":
        return EMPTY
    if kind == "constant":
        return Constant(draw(values))
    if kind == "range":
        low = draw(st.one_of(st.none(), values))
        high = draw(st.one_of(st.none(), values))
        return make_range(
            low, high, draw(st.booleans()), draw(st.booleans())
        )
    return make_enumeration(draw(st.sets(values, min_size=0, max_size=6)))


@given(patterns(), patterns(), values)
def test_conjunction_agrees_with_logical_and(p, q, v):
    """match(v, p ∧ q) ⇔ match(v, p) ∧ match(v, q)."""
    assert (p.conjoin(q)).matches(v) == (p.matches(v) and q.matches(v))


@given(patterns(), patterns(), values)
def test_conjunction_is_commutative_on_matching(p, q, v):
    assert p.conjoin(q).matches(v) == q.conjoin(p).matches(v)


@given(patterns(), patterns(), patterns(), values)
def test_conjunction_is_associative_on_matching(p, q, r, v):
    left = p.conjoin(q).conjoin(r)
    right = p.conjoin(q.conjoin(r))
    assert left.matches(v) == right.matches(v)


@given(patterns(), values)
def test_conjunction_is_idempotent_on_matching(p, v):
    assert p.conjoin(p).matches(v) == p.matches(v)


@given(patterns(), patterns())
def test_conjunction_closed_over_patterns(p, q):
    """The "and" of any two patterns is again a pattern."""
    assert isinstance(p.conjoin(q), Pattern)


@given(patterns())
def test_empty_flag_means_unsatisfiable_on_integers(p):
    if p.is_empty:
        for v in range(-60, 61):
            assert not p.matches(v)
