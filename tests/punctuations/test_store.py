"""Unit tests for the per-stream punctuation store."""

import pytest

from repro.errors import PunctuationError
from repro.punctuations.patterns import Constant, Range
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore, is_join_exploitable
from repro.tuples.schema import Schema


@pytest.fixture
def schema():
    return Schema.of("key", "payload", name="S")


@pytest.fixture
def store(schema):
    return PunctuationStore(schema, "key")


def punct(schema, spec, ts=0.0):
    return Punctuation.on_field(schema, "key", spec, ts=ts)


class TestIsJoinExploitable:
    def test_join_only_pattern_is_exploitable(self, schema):
        assert is_join_exploitable(punct(schema, 1), "key")

    def test_wildcard_join_pattern_is_exploitable(self, schema):
        assert is_join_exploitable(punct(schema, "*"), "key")

    def test_non_join_constraint_is_not_exploitable(self, schema):
        p = Punctuation.from_mapping(schema, {"key": 1, "payload": 2})
        assert not is_join_exploitable(p, "key")


class TestAddRemove:
    def test_ids_are_arrival_positions(self, store, schema):
        assert store.add(punct(schema, 1)) == 0
        assert store.add(punct(schema, 2)) == 1
        assert len(store) == 2

    def test_wrong_schema_rejected(self, store):
        other = Schema.of("key")
        with pytest.raises(PunctuationError):
            store.add(Punctuation.on_field(other, "key", 1))

    def test_remove_keeps_ids_stable(self, store, schema):
        store.add(punct(schema, 1))
        pid2 = store.add(punct(schema, 2))
        store.remove(0)
        assert store.get(0) is None
        assert store.get(pid2) is not None
        assert len(store) == 1

    def test_remove_is_idempotent(self, store, schema):
        store.add(punct(schema, 1))
        store.remove(0)
        store.remove(0)
        assert len(store) == 0

    def test_total_added_counts_everything(self, store, schema):
        store.add(punct(schema, 1))
        store.remove(0)
        store.add(punct(schema, 2))
        assert store.total_added == 2


class TestSetMatch:
    def test_covers_constant(self, store, schema):
        store.add(punct(schema, 5))
        assert store.covers_value(5)
        assert not store.covers_value(6)

    def test_covers_range(self, store, schema):
        store.add(punct(schema, (10, 20)))
        assert store.covers_value(15)
        assert not store.covers_value(25)

    def test_covers_after_removal(self, store, schema):
        pid = store.add(punct(schema, 5))
        store.remove(pid)
        assert not store.covers_value(5)

    def test_first_covering_prefers_earliest_arrival(self, store, schema):
        store.add(punct(schema, (0, 100)))  # id 0, general
        store.add(punct(schema, 5))  # id 1, constant
        pid, found = store.first_covering(5)
        assert pid == 0
        assert found.pattern_for("key") == Range(0, 100)

    def test_first_covering_constant_before_later_range(self, store, schema):
        store.add(punct(schema, 5))  # id 0
        store.add(punct(schema, (0, 100)))  # id 1
        pid, _found = store.first_covering(5)
        assert pid == 0

    def test_first_covering_none(self, store, schema):
        store.add(punct(schema, 5))
        assert store.first_covering(6) is None

    def test_has_equal_join_pattern(self, store, schema):
        store.add(punct(schema, 5))
        store.add(punct(schema, (1, 3)))
        assert store.has_equal_join_pattern(Constant(5))
        assert store.has_equal_join_pattern(Range(1, 3))
        assert not store.has_equal_join_pattern(Constant(6))
        assert not store.has_equal_join_pattern(Range(1, 4))


class TestCursors:
    def test_since_returns_new_entries(self, store, schema):
        store.add(punct(schema, 1))
        cursor = store.next_id
        store.add(punct(schema, 2))
        store.add(punct(schema, 3))
        fresh = store.since(cursor)
        assert [pid for pid, _p in fresh] == [1, 2]

    def test_since_skips_removed(self, store, schema):
        store.add(punct(schema, 1))
        store.add(punct(schema, 2))
        store.remove(0)
        assert [pid for pid, _p in store.since(0)] == [1]

    def test_items_in_arrival_order(self, store, schema):
        store.add(punct(schema, 3))
        store.add(punct(schema, 1))
        assert [p.pattern_for("key") for _i, p in store.items()] == [
            Constant(3),
            Constant(1),
        ]

    def test_iter_yields_punctuations(self, store, schema):
        store.add(punct(schema, 1))
        assert all(isinstance(p, Punctuation) for p in store)


class TestPrefixConsistency:
    def test_equal_patterns_allowed(self, schema):
        store = PunctuationStore(schema, "key", check_prefix_consistency=True)
        store.add(punct(schema, 5))
        store.add(punct(schema, 5))

    def test_disjoint_patterns_allowed(self, schema):
        store = PunctuationStore(schema, "key", check_prefix_consistency=True)
        store.add(punct(schema, (0, 5)))
        store.add(punct(schema, (6, 9)))

    def test_overlapping_patterns_rejected(self, schema):
        store = PunctuationStore(schema, "key", check_prefix_consistency=True)
        store.add(punct(schema, (0, 5)))
        with pytest.raises(PunctuationError, match="prefix-consistency"):
            store.add(punct(schema, (3, 9)))
