"""Unit and property tests for pattern parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PatternError
from repro.punctuations.patterns import (
    EMPTY,
    WILDCARD,
    Constant,
    EnumerationList,
    Range,
    make_enumeration,
    make_range,
    parse_pattern,
)


class TestParse:
    def test_wildcard_and_empty(self):
        assert parse_pattern("*") is WILDCARD
        assert parse_pattern("<>") is EMPTY

    def test_constants(self):
        assert parse_pattern("42") == Constant(42)
        assert parse_pattern("3.5") == Constant(3.5)
        assert parse_pattern("abc") == Constant("abc")
        assert parse_pattern("'42'") == Constant("42")
        assert parse_pattern('"x y"') == Constant("x y")

    def test_enumerations(self):
        assert parse_pattern("{1, 2, 3}") == EnumerationList(frozenset({1, 2, 3}))
        assert parse_pattern("{7}") == Constant(7)
        assert parse_pattern("{}") is EMPTY
        assert parse_pattern("{a, b}") == EnumerationList(frozenset({"a", "b"}))

    def test_ranges(self):
        assert parse_pattern("[1, 5]") == Range(1, 5)
        assert parse_pattern("(1, 5)") == Range(1, 5, False, False)
        assert parse_pattern("[1, 5)") == Range(1, 5, True, False)
        assert parse_pattern("[-inf, 5)") == Range(None, 5, high_inclusive=False)
        assert parse_pattern("[5, +inf)") == Range(5, None)
        assert parse_pattern("[, 5]") == Range(None, 5)

    def test_degenerate_ranges_normalise(self):
        assert parse_pattern("[5, 5]") == Constant(5)
        assert parse_pattern("(5, 5)") is EMPTY
        assert parse_pattern("[-inf, +inf]") is WILDCARD

    def test_errors(self):
        with pytest.raises(PatternError):
            parse_pattern("")
        with pytest.raises(PatternError):
            parse_pattern("[1, 2, 3]")
        with pytest.raises(PatternError):
            parse_pattern("[ , , ]")

    def test_whitespace_tolerated(self):
        assert parse_pattern("  [ 1 , 5 ]  ") == Range(1, 5)


values = st.integers(min_value=-50, max_value=50)


@given(values)
def test_constant_round_trip(v):
    assert parse_pattern(repr(Constant(v))) == Constant(v)


@given(st.sets(values, min_size=2, max_size=6))
def test_enumeration_round_trip(vs):
    pattern = make_enumeration(vs)
    assert parse_pattern(repr(pattern)) == pattern


@given(
    st.one_of(st.none(), values),
    st.one_of(st.none(), values),
    st.booleans(),
    st.booleans(),
)
def test_range_round_trip(low, high, low_inc, high_inc):
    pattern = make_range(low, high, low_inc, high_inc)
    assert parse_pattern(repr(pattern)) == pattern
