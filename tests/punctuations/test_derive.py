"""Unit tests for punctuation derivation from static constraints."""

import pytest

from repro.errors import PunctuationError
from repro.punctuations.derive import (
    ClusteredArrivalPunctuator,
    KeyDerivedPunctuator,
    OrderedArrivalPunctuator,
    annotate_schedule,
)
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v", name="S")


def schedule_of(*keys):
    return [
        (float(i), Tuple(SCHEMA, (key, i), ts=float(i)))
        for i, key in enumerate(keys)
    ]


def split(annotated):
    tuples = [i for _t, i in annotated if isinstance(i, Tuple)]
    puncts = [i for _t, i in annotated if isinstance(i, Punctuation)]
    return tuples, puncts


class TestKeyDerived:
    def test_one_punctuation_after_each_tuple(self):
        punctuator = KeyDerivedPunctuator(SCHEMA, "key")
        annotated = annotate_schedule(schedule_of(3, 1, 7), punctuator)
        tuples, puncts = split(annotated)
        assert len(tuples) == 3
        assert [p.pattern_for("key").value for p in puncts] == [3, 1, 7]
        assert punctuator.punctuations_derived == 3

    def test_punctuation_directly_follows_its_tuple(self):
        annotated = annotate_schedule(
            schedule_of(3, 1), KeyDerivedPunctuator(SCHEMA, "key")
        )
        kinds = [type(i).__name__ for _t, i in annotated]
        assert kinds == ["Tuple", "Punctuation", "Tuple", "Punctuation"]

    def test_duplicate_key_detected(self):
        with pytest.raises(PunctuationError, match="occurred twice"):
            annotate_schedule(schedule_of(3, 3), KeyDerivedPunctuator(SCHEMA, "key"))

    def test_derived_punctuation_shares_tuple_timestamp(self):
        annotated = annotate_schedule(
            schedule_of(3), KeyDerivedPunctuator(SCHEMA, "key")
        )
        (t_tuple, _), (t_punct, punct) = annotated
        assert t_punct == t_tuple
        assert punct.ts == t_tuple


class TestOrderedArrival:
    def test_advance_emits_strictly_below_range(self):
        punctuator = OrderedArrivalPunctuator(SCHEMA, "key")
        annotated = annotate_schedule(schedule_of(1, 1, 3, 5), punctuator)
        _tuples, puncts = split(annotated)
        assert len(puncts) == 2
        first = puncts[0].pattern_for("key")
        assert first.matches(0) and first.matches(2)
        assert not first.matches(3)  # strictly below the new value

    def test_no_punctuation_without_advance(self):
        annotated = annotate_schedule(
            schedule_of(2, 2, 2), OrderedArrivalPunctuator(SCHEMA, "key")
        )
        assert split(annotated)[1] == []

    def test_regression_detected(self):
        with pytest.raises(PunctuationError, match="back to"):
            annotate_schedule(
                schedule_of(5, 3), OrderedArrivalPunctuator(SCHEMA, "key")
            )


class TestClusteredArrival:
    def test_cluster_change_punctuates_previous_cluster(self):
        annotated = annotate_schedule(
            schedule_of(1, 1, 2, 2, 3), ClusteredArrivalPunctuator(SCHEMA, "key")
        )
        _tuples, puncts = split(annotated)
        assert [p.pattern_for("key").value for p in puncts] == [1, 2, 3]

    def test_final_cluster_closed_at_end_of_stream(self):
        annotated = annotate_schedule(
            schedule_of(7), ClusteredArrivalPunctuator(SCHEMA, "key")
        )
        _tuples, puncts = split(annotated)
        assert [p.pattern_for("key").value for p in puncts] == [7]

    def test_reappearing_value_detected(self):
        with pytest.raises(PunctuationError, match="reappeared"):
            annotate_schedule(
                schedule_of(1, 2, 1), ClusteredArrivalPunctuator(SCHEMA, "key")
            )

    def test_empty_schedule(self):
        assert annotate_schedule([], ClusteredArrivalPunctuator(SCHEMA, "key")) == []


class TestIntegrationWithPJoin:
    def test_derived_punctuations_drive_purging(self):
        """Clustered arrival + derivation lets PJoin bound its state —
        the k-constraint comparison the paper makes in Section 5."""
        from repro.core.config import PJoinConfig
        from repro.core.pjoin import PJoin
        from repro.operators.sink import Sink
        from repro.query.plan import QueryPlan
        from repro.sim.costs import CostModel

        schema_b = Schema.of("key", "w", name="B")
        # Stream A arrives clustered by key; B matches each cluster.
        keys = [k for k in range(30) for _ in range(4)]
        schedule_a = annotate_schedule(
            schedule_of(*keys), ClusteredArrivalPunctuator(SCHEMA, "key")
        )
        schedule_b = [
            (float(i) + 0.5, Tuple(schema_b, (k, i), ts=float(i) + 0.5))
            for i, k in enumerate(keys)
        ]
        plan = QueryPlan(cost_model=CostModel().scaled(0.001))
        join = PJoin(
            plan.engine, plan.cost_model, SCHEMA, schema_b, "key", "key",
            config=PJoinConfig(purge_threshold=1),
        )
        sink = Sink(plan.engine, plan.cost_model, keep_items=False)
        join.connect(sink)
        plan.add_source(schedule_a, join, port=0)
        plan.add_source(schedule_b, join, port=1)
        plan.run()
        assert sink.tuple_count > 0
        # B-state is purged cluster by cluster instead of growing to 120.
        assert join.tuples_purged > 0
        assert join.state_size(1) < 30
