"""Unit tests for punctuations over schemas."""

import pytest

from repro.errors import PunctuationError
from repro.punctuations.patterns import EMPTY, WILDCARD, Constant, Range
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


@pytest.fixture
def schema():
    return Schema.of("item_id", "bidder", "increase", name="Bid")


class TestConstruction:
    def test_arity_must_match_schema(self, schema):
        with pytest.raises(PunctuationError, match="3 patterns"):
            Punctuation(schema, [WILDCARD])

    def test_patterns_must_be_patterns(self, schema):
        with pytest.raises(PunctuationError):
            Punctuation(schema, [WILDCARD, WILDCARD, 5])

    def test_on_field_sets_one_pattern(self, schema):
        punct = Punctuation.on_field(schema, "item_id", 42)
        assert punct.pattern_for("item_id") == Constant(42)
        assert punct.pattern_for("bidder").is_wildcard

    def test_from_mapping(self, schema):
        punct = Punctuation.from_mapping(
            schema, {"item_id": (1, 5), "increase": {1.0, 2.0}}
        )
        assert punct.pattern_for("item_id") == Range(1, 5)
        assert punct.pattern_for("bidder").is_wildcard


class TestMatching:
    def test_matches_requires_all_patterns(self, schema):
        punct = Punctuation.from_mapping(schema, {"item_id": 1, "bidder": "bob"})
        assert punct.matches(Tuple(schema, (1, "bob", 2.0)))
        assert not punct.matches(Tuple(schema, (1, "eve", 2.0)))
        assert not punct.matches(Tuple(schema, (2, "bob", 2.0)))

    def test_matches_values_on_raw_tuples(self, schema):
        punct = Punctuation.on_field(schema, "item_id", 1)
        assert punct.matches_values((1, "x", 0.0))
        assert not punct.matches_values((2, "x", 0.0))

    def test_all_wildcard_matches_everything(self, schema):
        punct = Punctuation(schema, [WILDCARD] * 3)
        assert punct.is_all_wildcard
        assert punct.matches(Tuple(schema, (9, "z", 1.0)))

    def test_empty_punctuation_matches_nothing(self, schema):
        punct = Punctuation(schema, [EMPTY, WILDCARD, WILDCARD])
        assert punct.is_empty
        assert not punct.matches(Tuple(schema, (9, "z", 1.0)))


class TestConjunction:
    def test_conjoin_is_pattern_wise(self, schema):
        p = Punctuation.on_field(schema, "item_id", (1, 10))
        q = Punctuation.on_field(schema, "item_id", (5, 20))
        merged = p.conjoin(q)
        assert merged.pattern_for("item_id") == Range(5, 10)

    def test_conjoin_requires_same_schema(self, schema):
        other = Schema.of("x")
        with pytest.raises(PunctuationError):
            Punctuation.on_field(schema, "item_id", 1).conjoin(
                Punctuation.on_field(other, "x", 1)
            )

    def test_conjoin_of_disjoint_constants_is_empty(self, schema):
        p = Punctuation.on_field(schema, "item_id", 1)
        q = Punctuation.on_field(schema, "item_id", 2)
        assert p.conjoin(q).is_empty


class TestUtilities:
    def test_with_ts(self, schema):
        punct = Punctuation.on_field(schema, "item_id", 1, ts=1.0)
        assert punct.with_ts(9.0).ts == 9.0
        assert punct.ts == 1.0

    def test_restricted_to(self, schema):
        punct = Punctuation.on_field(schema, "item_id", 1)
        small = punct.restricted_to(["item_id"])
        assert small.schema.field_names == ("item_id",)
        assert small.pattern_for("item_id") == Constant(1)

    def test_equality_ignores_ts(self, schema):
        assert Punctuation.on_field(schema, "item_id", 1, ts=1.0) == \
            Punctuation.on_field(schema, "item_id", 1, ts=2.0)

    def test_hashable(self, schema):
        p = Punctuation.on_field(schema, "item_id", 1)
        q = Punctuation.on_field(schema, "item_id", 1)
        assert hash(p) == hash(q)

    def test_repr_names_fields(self, schema):
        assert "item_id:1" in repr(Punctuation.on_field(schema, "item_id", 1))
