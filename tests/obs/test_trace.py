"""Span tracing: nesting, ordering, filtering and the ring buffer."""

from repro.obs.trace import PHASE_BEGIN, PHASE_END, Tracer, get_tracer


class TestSpans:
    def test_begin_end_reassembles_a_closed_span(self):
        tracer = Tracer()
        span_id = tracer.begin(1.0, "join", "purge", reason="threshold")
        tracer.end(1.0, removed=3, cost=2.5)
        (span,) = tracer.spans()
        assert span.span_id == span_id
        assert span.closed
        assert span.begin == 1.0 and span.end == 1.0
        assert span.details == {"reason": "threshold", "removed": 3, "cost": 2.5}

    def test_nested_spans_link_to_their_parent(self):
        tracer = Tracer()
        outer = tracer.begin(1.0, "join", "purge_run")
        inner = tracer.begin(1.0, "join", "hash_purge")
        tracer.end(1.0)
        tracer.end(1.0)
        spans = {s.action: s for s in tracer.spans()}
        assert spans["purge_run"].parent_id is None
        assert spans["hash_purge"].parent_id == outer
        assert spans["hash_purge"].span_id == inner

    def test_instants_nest_under_the_open_span(self):
        tracer = Tracer()
        outer = tracer.begin(1.0, "join", "disk_join")
        tracer.record(1.0, "join", "disk_partition", partition=4)
        tracer.end(1.0)
        tracer.record(2.0, "join", "event")
        instants = [e for e in tracer.events if e.phase == "i"]
        assert instants[0].parent_id == outer
        assert instants[1].parent_id is None

    def test_events_keep_virtual_time_order_of_recording(self):
        tracer = Tracer()
        tracer.record(1.0, "a", "x")
        tracer.begin(2.0, "a", "y")
        tracer.end(3.0)
        tracer.record(4.0, "a", "z")
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_open_span_has_no_end(self):
        tracer = Tracer()
        tracer.begin(5.0, "join", "disk_join")
        (span,) = tracer.spans()
        assert not span.closed
        assert span.end is None
        assert span.duration == 0.0

    def test_end_without_begin_is_a_noop(self):
        tracer = Tracer()
        tracer.end(1.0)
        assert len(tracer) == 0

    def test_counts_count_spans_once(self):
        tracer = Tracer()
        tracer.begin(1.0, "join", "purge")
        tracer.end(2.0)
        tracer.record(3.0, "join", "purge")
        assert tracer.counts() == {"purge": 2}


class TestFiltering:
    def test_filtered_span_keeps_descendant_parent_links(self):
        """Suppressing a span's records must not re-parent its children."""
        tracer = Tracer(actions=["hash_purge"])
        hidden = tracer.begin(1.0, "join", "purge_run")
        tracer.record(1.0, "join", "hash_purge", side="left")
        tracer.end(1.0)
        (event,) = list(tracer.events)
        assert event.action == "hash_purge"
        assert event.parent_id == hidden

    def test_filter_applies_to_begin_and_end_marks(self):
        tracer = Tracer(actions=["propagate"])
        tracer.begin(1.0, "join", "purge")
        tracer.end(1.0)
        tracer.begin(2.0, "join", "propagate")
        tracer.end(2.0)
        actions = {e.action for e in tracer.events}
        assert actions == {"propagate"}
        phases = [e.phase for e in tracer.events]
        assert phases == [PHASE_BEGIN, PHASE_END]


class TestRingBuffer:
    def test_keeps_newest_events_and_counts_drops(self):
        tracer = Tracer(limit=3)
        for i in range(10):
            tracer.record(float(i), "op", "x", i=i)
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [e.details["i"] for e in tracer.events] == [7, 8, 9]

    def test_spans_with_evicted_begin_are_omitted(self):
        tracer = Tracer(limit=2)
        tracer.begin(1.0, "op", "old")
        tracer.end(1.0)
        tracer.begin(2.0, "op", "new")
        tracer.end(2.0)
        # buffer holds only the "new" B/E pair now
        assert [s.action for s in tracer.spans()] == ["new"]

    def test_dropped_surfaces_in_render(self):
        tracer = Tracer(limit=2)
        for i in range(5):
            tracer.record(float(i), "op", "x")
        out = tracer.render()
        assert "3 earlier events dropped" in out
        assert "limit=2" in out


class TestEngineHook:
    def test_get_tracer_returns_none_when_off(self, engine):
        assert get_tracer(engine) is None

    def test_get_tracer_returns_attached_tracer(self, engine):
        tracer = Tracer()
        engine.tracer = tracer
        assert get_tracer(engine) is tracer
