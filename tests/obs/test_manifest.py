"""Run manifests: structure, counter diffing and the acceptance run."""

import json

from repro.core.config import PJoinConfig
from repro.experiments.harness import (
    pjoin_factory,
    run_join_experiment,
    tracing,
)
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.manifest import MANIFEST_VERSION, diff_counters
from repro.obs.trace import Tracer
from repro.sim.costs import CostModel
from repro.workloads.generator import generate_workload


def small_workload(seed=3, n=400):
    return generate_workload(
        n_tuples_per_stream=n, punct_spacing_a=10, punct_spacing_b=20,
        seed=seed,
    )


class TestManifestStructure:
    def test_manifest_fields(self):
        run = run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=5)),
            small_workload(),
            label="m",
            cost_model=CostModel().scaled(0.01),
        )
        manifest = run.manifest
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["label"] == "m"
        assert manifest["join_type"] == "PJoin"
        assert manifest["config"]["purge_threshold"] == 5
        assert manifest["workload"]["n_tuples_per_stream"] == 400
        assert manifest["seed"] == 3
        assert manifest["duration_ms"] == run.duration_ms
        assert manifest["engine"]["events_executed"] > 0
        # The last sample lands at or before end-of-stream delivery.
        assert 0 < manifest["series_final"]["output"] <= run.results
        assert set(manifest["counters"]) >= {"pjoin", "sink"}
        assert manifest["counters"]["pjoin"]["probes"] > 0

    def test_manifest_is_json_serialisable(self):
        run = run_join_experiment(
            pjoin_factory(), small_workload(n=100),
            cost_model=CostModel().scaled(0.01),
        )
        round_tripped = json.loads(json.dumps(run.manifest))
        assert round_tripped == run.manifest


class TestDiffCounters:
    OLD = {"counters": {"pjoin": {"probes": 100, "purge_runs": 0,
                                  "label": "x", "same": 5}}}
    NEW = {"counters": {"pjoin": {"probes": 150, "purge_runs": 3,
                                  "label": "y", "same": 5}}}

    def test_reports_relative_change(self):
        rows = diff_counters(self.OLD, self.NEW)
        by_counter = {row[1]: row for row in rows}
        assert by_counter["probes"][2:] == (100.0, 150.0, 0.5)

    def test_zero_to_nonzero_is_infinite(self):
        rows = diff_counters(self.OLD, self.NEW)
        by_counter = {row[1]: row for row in rows}
        assert by_counter["purge_runs"][4] == float("inf")

    def test_skips_unchanged_and_non_numeric(self):
        counters = {row[1] for row in diff_counters(self.OLD, self.NEW)}
        assert "same" not in counters
        assert "label" not in counters

    def test_threshold_filters_small_moves(self):
        rows = diff_counters(self.OLD, self.NEW, threshold=0.6)
        assert {row[1] for row in rows} == {"purge_runs"}

    def test_operators_only_in_one_manifest_are_ignored(self):
        rows = diff_counters(self.OLD, {"counters": {"other": {"probes": 1}}})
        assert rows == []


class TestAcceptanceRun:
    """The ISSUE's acceptance bar: a fig08-like memory-constrained run."""

    def run_traced(self):
        tracer = Tracer()
        run = run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=5, memory_threshold=60)),
            small_workload(n=600),
            label="fig08-like",
            cost_model=CostModel().scaled(0.01),
            tracer=tracer,
        )
        return run, tracer

    def test_manifest_has_nonzero_probe_purge_and_disk_counters(self):
        run, _tracer = self.run_traced()
        counters = run.manifest["counters"]["pjoin"]
        assert counters["probes"] > 0
        assert counters["tuples_purged"] > 0
        assert counters["purge_runs"] > 0
        assert counters["disk.tuples_written"] > 0
        assert counters["disk.bytes_written"] > 0

    def test_chrome_trace_is_well_formed(self):
        _run, tracer = self.run_traced()
        events = to_chrome_trace(tracer)
        assert events, "traced run produced no events"
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        validate_chrome_trace(events)  # raises on unmatched B/E pairs


class TestZeroCostWhenOff:
    """Tracing must not change the simulation, and off means off."""

    def run_once(self, tracer=None):
        return run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=5, memory_threshold=60)),
            small_workload(n=300),
            cost_model=CostModel().scaled(0.01),
            tracer=tracer,
        )

    def test_traced_and_untraced_runs_are_identical(self):
        untraced = self.run_once()
        traced = self.run_once(Tracer())
        assert untraced.results == traced.results
        assert untraced.duration_ms == traced.duration_ms
        assert (untraced.manifest["engine"]["events_executed"]
                == traced.manifest["engine"]["events_executed"])
        assert untraced.manifest["counters"] == traced.manifest["counters"]
        assert len(traced.tracer.events) > 0

    def test_no_tracer_attribute_when_off(self):
        run = self.run_once()
        assert run.tracer is None
        assert not hasattr(run.join.engine, "tracer")


class TestTracingContext:
    def test_context_applies_to_runs_inside_the_block(self):
        with tracing() as tracer:
            run = run_join_experiment(
                pjoin_factory(PJoinConfig(purge_threshold=3)),
                small_workload(n=100),
                cost_model=CostModel().scaled(0.01),
            )
        assert run.tracer is tracer
        assert len(tracer.events) > 0

    def test_context_restores_previous_state(self):
        with tracing():
            pass
        run = run_join_experiment(
            pjoin_factory(), small_workload(n=50),
            cost_model=CostModel().scaled(0.01),
        )
        assert run.tracer is None
