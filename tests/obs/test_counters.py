"""Counter registries: helper functions and hand-checked join counts."""

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.obs.counters import (
    counters_of,
    merge_component,
    namespaced,
    numeric_only,
)
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA_A = Schema.of("key", "a", name="A")
SCHEMA_B = Schema.of("key", "b", name="B")


class TestHelpers:
    def test_namespaced_prefixes_every_key(self):
        assert namespaced("disk", {"reads": 1, "writes": 2}) == {
            "disk.reads": 1, "disk.writes": 2,
        }

    def test_merge_component_skips_uninstrumented(self):
        out = {"a": 1}
        assert merge_component(out, "x", object()) == {"a": 1}
        assert merge_component(out, "x", None) == {"a": 1}

    def test_merge_component_merges_counters(self):
        class Disk:
            def counters(self):
                return {"reads": 3}

        out = merge_component({}, "disk", Disk())
        assert out == {"disk.reads": 3}

    def test_counters_of_uninstrumented_is_empty(self):
        assert counters_of(object()) == {}

    def test_numeric_only_drops_structures_and_bools(self):
        counters = {"n": 3, "t": 1.5, "nested": {"x": 1}, "flag": True}
        assert numeric_only(counters) == {"n": 3.0, "t": 1.5}


class TestHandCheckedPJoinRun:
    """A tiny scripted run whose counters are verifiable by hand."""

    def build(self, engine, cheap_cost_model):
        join = PJoin(
            engine, cheap_cost_model, SCHEMA_A, SCHEMA_B, "key", "key",
            config=PJoinConfig(purge_threshold=1),
        )
        sink = Sink(engine, cheap_cost_model, keep_items=True)
        join.connect(sink)
        return join, sink

    def test_probe_match_insert_and_purge_counts(self, engine, cheap_cost_model):
        join, sink = self.build(engine, cheap_cost_model)
        # Three tuples: each probes the opposite state once; only the
        # B tuple finds a match (the stored A key=1).
        join.push(Tuple(SCHEMA_A, (1, 10)), 0)
        join.push(Tuple(SCHEMA_A, (2, 20)), 0)
        join.push(Tuple(SCHEMA_B, (1, 30)), 1)
        # B promises no more key=1: the stored A key=1 tuple is purged.
        join.push(Punctuation.on_field(SCHEMA_B, "key", 1), 1)
        engine.run()

        counters = join.counters()
        assert counters["tuples_in"] == 3
        assert counters["punctuations_in"] == 1
        assert counters["probes"] == 3
        assert counters["probe_matches"] == 1
        assert counters["insertions"] == 3
        assert counters["results_produced"] == 1
        assert counters["tuples_out"] == 1
        assert counters["purge_runs"] == 1
        assert counters["tuples_purged"] == 1
        assert counters["state_total"] == 2  # A key=2 and B key=1 remain
        assert sink.tuple_count == 1

    def test_counters_match_live_attributes(self, engine, cheap_cost_model):
        join, _sink = self.build(engine, cheap_cost_model)
        join.push(Tuple(SCHEMA_A, (1, 10)), 0)
        join.push(Tuple(SCHEMA_B, (1, 30)), 1)
        engine.run()
        counters = join.counters()
        assert counters["probes"] == join.probes
        assert counters["insertions"] == join.insertions
        assert counters["tuples_purged"] == join.tuples_purged
        assert counters["propagation_runs"] == join.propagation_runs

    def test_punctuation_store_counters(self, engine, cheap_cost_model):
        join, _sink = self.build(engine, cheap_cost_model)
        join.push(Punctuation.on_field(SCHEMA_B, "key", 7), 1)
        engine.run()
        store = join.sides[1].store
        counters = store.counters()
        assert counters["punctuations_seen"] == 1
        assert counters["live"] + counters["removed"] == 1

    def test_operator_base_counters_present(self, engine, cheap_cost_model):
        join, sink = self.build(engine, cheap_cost_model)
        join.push(Tuple(SCHEMA_A, (1, 10)), 0)
        engine.run()
        for op in (join, sink):
            counters = op.counters()
            for key in ("items_processed", "tuples_in", "punctuations_in",
                        "tuples_out", "busy_time_ms", "max_queue_length"):
                assert key in counters, (op.name, key)
