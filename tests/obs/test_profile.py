"""The hot-path profiler: attribution math, harness integration, identity.

The headline contracts under test:

* exclusive (self-time) attribution telescopes — the per-layer self
  times sum to exactly the total profiled span, for any call tree;
* profiling is applied by shadowing instances and fully reversed by
  ``restore()``, so an unprofiled run carries *no* hooks and shared
  objects (the cost model) do not leak instrumentation across runs;
* a profiled run is deterministically identical to an unprofiled one:
  same manifest, byte-identical figure JSON.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import PJoinConfig
from repro.experiments.export import save_figure_json
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import (
    active_profiler,
    pjoin_factory,
    profiling,
    run_join_experiment,
    sharding,
    shj_factory,
    tracing,
    xjoin_factory,
)
from repro.obs.profile import LAYERS, PROFILE_VERSION, Profiler
from repro.obs.trace import Tracer
from repro.workloads.generator import generate_workload


class FakeClock:
    """Deterministic ns clock: each reading advances by a fixed step."""

    def __init__(self, step: int = 10):
        self.t = 0
        self.step = step

    def __call__(self) -> int:
        self.t += self.step
        return self.t


def small_workload(n=300, spacing=10.0, seed=7):
    return generate_workload(
        n_tuples_per_stream=n,
        punct_spacing_a=spacing,
        punct_spacing_b=spacing,
        seed=seed,
    )


class TestAttribution:
    def test_single_frame(self):
        prof = Profiler(clock=FakeClock(step=10))
        fn = prof.wrap(lambda: None, "site", "core")
        fn()
        # Two clock readings 10ns apart: 10ns of exclusive time.
        assert prof.self_ns[("site", "core")] == 10
        assert prof.calls[("site", "core")] == 1
        assert prof.total_ns == 10

    def test_nested_frames_are_exclusive(self):
        prof = Profiler(clock=FakeClock(step=10))
        inner = prof.wrap(lambda: None, "inner", "core")
        outer = prof.wrap(inner, "outer", "shard")
        outer()
        # The outer frame is charged only its own time; inner time is
        # subtracted, and outer + inner == total exactly.
        inner_ns = prof.self_ns[("inner", "core")]
        outer_ns = prof.self_ns[("outer", "shard")]
        assert inner_ns > 0 and outer_ns > 0
        assert inner_ns + outer_ns == prof.total_ns

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            Profiler().wrap(lambda: None, "site", "nope")

    def test_wrapped_exception_still_attributed(self):
        prof = Profiler(clock=FakeClock())

        def boom():
            raise RuntimeError("x")

        fn = prof.wrap(boom, "site", "core")
        with pytest.raises(RuntimeError):
            fn()
        assert prof.calls[("site", "core")] == 1
        assert prof.total_ns > 0

    @given(st.recursive(st.just([]),
                        lambda children: st.lists(children, max_size=3),
                        max_leaves=12))
    def test_self_times_sum_to_total_for_any_call_tree(self, tree):
        """Property: attribution telescopes exactly, whatever the shape."""
        prof = Profiler(clock=FakeClock(step=3))

        def execute(node, depth):
            layer = LAYERS[depth % len(LAYERS)]
            fn = prof.wrap(
                lambda: [execute(child, depth + 1) for child in node],
                f"site{depth}", layer,
            )
            fn()

        for top in [tree] if not isinstance(tree, list) else (tree or [[]]):
            execute(top, 0)
        assert sum(prof.self_ns.values()) == prof.total_ns

    def test_snapshot_schema(self):
        # A millisecond-scale step, so the rounded snapshot is non-zero.
        prof = Profiler(clock=FakeClock(step=10_000_000))
        prof.wrap(lambda: None, "site", "core")()
        snap = prof.snapshot()
        assert snap["profile_version"] == PROFILE_VERSION
        assert set(snap["layers"]) == set(LAYERS)
        assert snap["sites"][0]["source"] == "site"
        assert snap["total_ms"] > 0


class TestInstrumentAndRestore:
    def run_once(self, factory, workload, **features):
        import contextlib

        with contextlib.ExitStack() as stack:
            if features.get("obs"):
                stack.enter_context(tracing(Tracer()))
            if features.get("shard"):
                stack.enter_context(sharding(1))
            profiler = stack.enter_context(profiling())
            run = run_join_experiment(factory, workload, label="profiled")
        return run, profiler

    def test_layers_attributed_on_pjoin(self):
        factory = pjoin_factory(PJoinConfig(purge_threshold=1))
        run, profiler = self.run_once(factory, small_workload(), obs=True)
        layers = profiler.snapshot()["layers"]
        assert layers["core"]["self_ms"] > 0
        assert layers["core"]["calls"] > 0
        assert layers["obs"]["calls"] > 0
        # Histograms recorded in virtual time.
        assert profiler.histograms["result_latency_ms"].count > 0
        assert profiler.histograms["probe_cost_ms"].count > 0

    def test_purge_lag_recorded_for_pjoin(self):
        factory = pjoin_factory(PJoinConfig(purge_threshold=1))
        _, profiler = self.run_once(factory, small_workload())
        assert profiler.histograms["purge_lag_ms"].count > 0

    def test_shard_layer_attributed_under_sharding(self):
        factory = pjoin_factory(PJoinConfig(purge_threshold=1))
        _, profiler = self.run_once(factory, small_workload(), shard=True)
        layers = profiler.snapshot()["layers"]
        assert layers["shard"]["calls"] > 0
        assert layers["core"]["calls"] > 0

    @pytest.mark.parametrize("factory", [xjoin_factory(), shj_factory()],
                             ids=["xjoin", "shj"])
    def test_other_join_algorithms_profile_too(self, factory):
        run, profiler = self.run_once(factory, small_workload())
        assert profiler.snapshot()["layers"]["core"]["calls"] > 0
        assert profiler.histograms["result_latency_ms"].count > 0

    def test_restore_removes_every_shadow(self):
        factory = pjoin_factory(PJoinConfig(purge_threshold=1))
        run, _ = self.run_once(factory, small_workload(), obs=True)
        join = run.join
        # The tracer suppresses the fast-path build, so restore() must
        # leave literally no instance shadows behind.
        for attr in ("handle", "on_finish", "emit_joins", "_handle_punctuation"):
            assert attr not in vars(join), f"leaked shadow: {attr}"

    def test_restore_preserves_fast_path_handle(self):
        from repro.operators import fastpath

        factory = pjoin_factory(PJoinConfig(purge_threshold=1))
        run, _ = self.run_once(factory, small_workload())
        join = run.join
        # No tracer: the join built its fast path; profiling shadowed it
        # for the run and restore() must hand it back, not delete it.
        assert fastpath.has_fastpath(join)
        for attr in ("on_finish", "emit_joins", "_handle_punctuation"):
            fn = vars(join).get(attr)
            assert fn is None or not getattr(
                fn, "__repro_profiled__", False
            ), f"leaked profiler shadow: {attr}"

    def test_no_profiler_active_outside_context(self):
        assert active_profiler() is None
        with profiling() as prof:
            assert active_profiler() is prof
        assert active_profiler() is None


class TestProfiledEqualsUnprofiled:
    def test_manifest_identical(self):
        workload = small_workload()
        factory = pjoin_factory(PJoinConfig(purge_threshold=1))
        plain = run_join_experiment(factory, workload, label="run")
        with profiling():
            profiled = run_join_experiment(factory, workload, label="run")
        assert plain.profile is None
        assert profiled.profile is not None
        # The profile rides on the run object, never inside the manifest.
        assert profiled.manifest == plain.manifest

    def test_figure_json_byte_identical(self, tmp_path):
        """The acceptance bar: profiled figure JSON is byte-identical."""
        plain_path = tmp_path / "plain.json"
        profiled_path = tmp_path / "profiled.json"
        save_figure_json(ALL_FIGURES["figure5"](scale=0.06), plain_path)
        with profiling():
            save_figure_json(ALL_FIGURES["figure5"](scale=0.06), profiled_path)
        assert profiled_path.read_bytes() == plain_path.read_bytes()

    def test_cost_model_shared_across_runs_stays_clean(self):
        # The second (unprofiled) run must not see the first run's
        # probe-cost interceptor: same virtual outcome either way.
        workload = small_workload(n=150)
        factory = pjoin_factory(PJoinConfig(purge_threshold=1))
        with profiling():
            run_join_experiment(factory, workload, label="first")
        after = run_join_experiment(factory, workload, label="second")
        before = run_join_experiment(factory, workload, label="second")
        assert after.manifest == before.manifest
