"""Exporters: JSONL, Chrome trace-event JSON and the indented timeline."""

import json
from pathlib import Path

import pytest

from repro.obs.export import (
    render_timeline,
    save_chrome_trace,
    save_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.trace import Tracer

GOLDEN = Path(__file__).parent / "data" / "golden_chrome_trace.json"


def golden_tracer() -> Tracer:
    """The fixed scenario the golden file was generated from."""
    tracer = Tracer()
    tracer.record(0.5, "join", "event", type="PurgeThresholdReachEvent")
    tracer.begin(1.0, "join", "purge")
    tracer.record(1.0, "join", "hash_purge", side="left", scanned=2, discarded=1)
    tracer.end(1.0, scanned=2, discarded=1, cost=3.5)
    tracer.begin(2.0, "join", "disk_join")  # left open on purpose
    return tracer


class TestChromeTrace:
    def test_matches_golden_file(self):
        events = to_chrome_trace(golden_tracer())
        assert events == json.loads(GOLDEN.read_text())

    def test_every_event_has_the_required_keys(self):
        for event in to_chrome_trace(golden_tracer()):
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_virtual_ms_become_trace_us(self):
        tracer = Tracer()
        tracer.record(12.25, "op", "x")
        (event,) = to_chrome_trace(tracer)
        assert event["ts"] == 12250.0

    def test_open_span_gets_synthetic_end(self):
        events = to_chrome_trace(golden_tracer())
        validate_chrome_trace(events)  # would raise on an unclosed B
        assert events[-1]["ph"] == "E"
        assert events[-1]["name"] == "disk_join"

    def test_end_with_evicted_begin_is_skipped(self):
        tracer = Tracer(limit=1)
        tracer.begin(1.0, "op", "span")
        tracer.end(2.0)  # evicts the B; an unmatched E would be invalid
        events = to_chrome_trace(tracer)
        validate_chrome_trace(events)
        assert [e["ph"] for e in events] == []

    def test_save_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(golden_tracer(), path)
        validate_chrome_trace(json.loads(path.read_text()))


class TestValidator:
    def test_accepts_matched_pairs(self):
        validate_chrome_trace([
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": "t"},
            {"name": "b", "ph": "i", "ts": 1, "pid": 1, "tid": "t"},
            {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": "t"},
        ])

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing keys"):
            validate_chrome_trace([{"name": "a", "ph": "i"}])

    def test_rejects_unmatched_end(self):
        with pytest.raises(ValueError, match="E without a matching B"):
            validate_chrome_trace(
                [{"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": "t"}]
            )

    def test_rejects_interleaved_spans_on_one_thread(self):
        with pytest.raises(ValueError, match="closes B"):
            validate_chrome_trace([
                {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": "t"},
                {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": "t"},
                {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": "t"},
            ])

    def test_rejects_unclosed_begin(self):
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(
                [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": "t"}]
            )

    def test_rejects_non_dict_events(self):
        with pytest.raises(ValueError, match="not a dict"):
            validate_chrome_trace(["nope"])


class TestJsonl:
    def test_one_json_object_per_event(self):
        lines = to_jsonl(golden_tracer()).splitlines()
        assert len(lines) == 5
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["action"] == "event"
        assert parsed[1]["phase"] == "B"
        assert parsed[3]["details"]["cost"] == 3.5

    def test_save_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl(golden_tracer(), path)
        assert len(path.read_text().splitlines()) == 5

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_jsonl(Tracer(), path)
        assert path.read_text() == ""


class TestTimeline:
    def test_children_indent_under_their_span(self):
        lines = render_timeline(golden_tracer()).splitlines()
        assert lines[0].startswith("[")           # instant at depth 0
        assert "▶ purge" in lines[1]
        assert lines[2].startswith("  ")          # nested hash_purge
        assert "◀ purge" in lines[3]
        assert not lines[3].startswith("  ")      # end back at depth 0

    def test_truncation_reports_the_remainder(self):
        tracer = Tracer()
        for i in range(10):
            tracer.record(float(i), "op", "x")
        assert "... and 7 more" in render_timeline(tracer, max_events=3)
