"""Fixed-bucket histogram: exact bucket math, merge, percentiles."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.obs.histogram import FixedBucketHistogram


def unit_hist(**kwargs):
    # resolution 1.0 makes units == value, so bucket indices are easy
    # to compute by hand (sub_bucket_bits=5: 64 exact buckets, then
    # 32 sub-buckets per octave).
    kwargs.setdefault("resolution_ms", 1.0)
    kwargs.setdefault("sub_bucket_bits", 5)
    return FixedBucketHistogram(**kwargs)


class TestBucketBoundaries:
    """Hand-computed indices around the linear/log boundary."""

    @pytest.mark.parametrize("value, index", [
        (0, 0),
        (0.5, 0),       # below one unit
        (1, 1),
        (63, 63),       # last exact bucket
        (63.99, 63),
        (64, 64),       # first log bucket (octave 1, offset 0)
        (65, 64),       # same bucket: width 2 in octave 1
        (66, 65),
        (126, 95),      # last sub-bucket of octave 1
        (127, 95),
        (128, 96),      # first sub-bucket of octave 2 (width 4)
        (131, 96),
        (132, 97),
    ])
    def test_index(self, value, index):
        assert unit_hist().bucket_index(value) == index

    def test_negative_values_clamp_to_bucket_zero(self):
        assert unit_hist().bucket_index(-5.0) == 0

    @pytest.mark.parametrize("index, bound", [
        (0, 0.0), (1, 1.0), (63, 63.0),
        (64, 64.0), (65, 66.0), (95, 126.0), (96, 128.0), (97, 132.0),
    ])
    def test_lower_bound(self, index, bound):
        assert unit_hist().bucket_lower_bound(index) == bound

    def test_lower_bound_rejects_negative_index(self):
        with pytest.raises(ConfigError):
            unit_hist().bucket_lower_bound(-1)

    @given(st.floats(min_value=0.0, max_value=1e9,
                     allow_nan=False, allow_infinity=False))
    def test_bound_brackets_value(self, value):
        """lower_bound(index(v)) <= v < lower_bound(index(v) + 1)."""
        hist = unit_hist()
        index = hist.bucket_index(value)
        assert hist.bucket_lower_bound(index) <= value
        assert value < hist.bucket_lower_bound(index + 1)

    @given(st.floats(min_value=64.0, max_value=1e9,
                     allow_nan=False, allow_infinity=False))
    def test_relative_error_bound(self, value):
        """Past the exact range, bucket width stays within 2^-bits of
        the value (the HDR relative-error bound); below it buckets are
        one unit wide, i.e. exact."""
        hist = unit_hist()
        index = hist.bucket_index(value)
        width = hist.bucket_lower_bound(index + 1) - hist.bucket_lower_bound(index)
        assert width <= value / (1 << hist.sub_bucket_bits) + 1e-9


class TestRecording:
    def test_stats(self):
        hist = unit_hist()
        hist.record_many([1.0, 2.0, 3.0])
        assert hist.count == len(hist) == 3
        assert hist.min_ms == 1.0
        assert hist.max_ms == 3.0
        assert hist.mean() == pytest.approx(2.0)

    def test_weighted_record(self):
        hist = unit_hist()
        hist.record(5.0, count=4)
        assert hist.count == 4
        assert hist.sum_ms == pytest.approx(20.0)

    def test_non_positive_count_ignored(self):
        hist = unit_hist()
        hist.record(5.0, count=0)
        hist.record(5.0, count=-2)
        assert hist.count == 0

    def test_empty_histogram(self):
        hist = unit_hist()
        assert hist.mean() == 0.0
        assert hist.percentile(50) == 0.0
        assert hist.min_ms is None and hist.max_ms is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            FixedBucketHistogram(resolution_ms=0)
        with pytest.raises(ConfigError):
            FixedBucketHistogram(sub_bucket_bits=0)
        with pytest.raises(ConfigError):
            FixedBucketHistogram(sub_bucket_bits=25)


class TestPercentiles:
    def test_exact_range_percentiles(self):
        hist = unit_hist()
        hist.record_many(float(v) for v in range(1, 11))  # 1..10, exact buckets
        assert hist.percentile(50) == 5.0
        assert hist.percentile(100) == 10.0
        assert hist.percentile(0) == 1.0

    def test_percentile_is_bucket_lower_bound(self):
        hist = unit_hist()
        hist.record(127.0)  # bucket 95, lower bound 126
        assert hist.percentile(50) == 126.0

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ConfigError):
            unit_hist().percentile(101)

    def test_summary_schema(self):
        hist = unit_hist()
        hist.record_many([1.0, 2.0, 100.0])
        summary = hist.summary()
        assert set(summary) == {
            "count", "min_ms", "mean_ms", "max_ms",
            "p50_ms", "p95_ms", "p99_ms",
        }
        assert summary["count"] == 3
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    def test_percentiles_monotone(self, values):
        hist = unit_hist()
        hist.record_many(values)
        p50, p95, p99 = (hist.percentile(p) for p in (50, 95, 99))
        assert p50 <= p95 <= p99 <= max(values)


class TestMerge:
    def test_merge_equals_recording_everything(self):
        left, right, both = unit_hist(), unit_hist(), unit_hist()
        left.record_many([1.0, 2.0, 200.0])
        right.record_many([3.0, 150.0])
        both.record_many([1.0, 2.0, 200.0, 3.0, 150.0])
        left.merge(right)
        assert left.counts == both.counts
        assert left.count == both.count
        assert left.sum_ms == pytest.approx(both.sum_ms)
        assert left.min_ms == both.min_ms
        assert left.max_ms == both.max_ms
        for pct in (50, 95, 99):
            assert left.percentile(pct) == both.percentile(pct)

    def test_merge_with_empty(self):
        left, right = unit_hist(), unit_hist()
        left.record(5.0)
        left.merge(right)
        assert left.count == 1
        right.merge(left)
        assert right.count == 1 and right.min_ms == 5.0

    def test_parameter_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            unit_hist().merge(unit_hist(resolution_ms=2.0))
        with pytest.raises(ConfigError):
            unit_hist().merge(unit_hist(sub_bucket_bits=6))


class TestSerialization:
    def test_json_roundtrip(self):
        hist = unit_hist()
        hist.record_many([0.0, 1.5, 64.0, 500.0])
        payload = json.loads(json.dumps(hist.to_dict()))
        back = FixedBucketHistogram.from_dict(payload)
        assert back.to_dict() == hist.to_dict()
        assert back.percentile(95) == hist.percentile(95)

    def test_counts_keys_are_strings_in_json(self):
        hist = unit_hist()
        hist.record(64.0)
        assert list(hist.to_dict()["counts"]) == ["64"]
