"""The shared stderr diagnostic logger behind --log-level/--quiet."""

import io
import json
import logging

from repro.obs.logging import (
    LOG_LEVELS,
    LOGGER_NAME,
    get_logger,
    setup_logging,
)


def teardown_function(_fn):
    # Tests configure the shared logger; leave it library-silent again.
    root = logging.getLogger(LOGGER_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.addHandler(logging.NullHandler())


class TestGetLogger:
    def test_names_are_namespaced(self):
        assert get_logger("repro.perf.bench").name == "repro.perf.bench"
        assert get_logger("custom").name == "repro.custom"

    def test_silent_by_default(self):
        # A library import must not print; the NullHandler swallows
        # records and propagation to the root logger is not relied on.
        log = get_logger("quiet_module")
        log.error("nobody should see this")  # must not raise or warn


class TestSetupLogging:
    def test_levels(self):
        stream = io.StringIO()
        setup_logging(level="warning", stream=stream)
        log = get_logger("t")
        log.info("hidden")
        log.warning("shown")
        out = stream.getvalue()
        assert "hidden" not in out
        assert "WARNING repro.t: shown" in out

    def test_quiet_overrides_level(self):
        stream = io.StringIO()
        setup_logging(level="debug", quiet=True, stream=stream)
        log = get_logger("t")
        log.warning("hidden")
        log.error("shown")
        out = stream.getvalue()
        assert "hidden" not in out and "shown" in out

    def test_json_lines(self):
        stream = io.StringIO()
        setup_logging(json_lines=True, stream=stream)
        get_logger("t").info("structured %s", "message")
        record = json.loads(stream.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "repro.t"
        assert record["message"] == "structured message"
        assert "ts" in record

    def test_idempotent(self):
        stream = io.StringIO()
        setup_logging(stream=stream)
        setup_logging(stream=stream)  # second call must not duplicate
        get_logger("t").info("once")
        assert stream.getvalue().count("once") == 1

    def test_all_declared_levels_accepted(self):
        for level in LOG_LEVELS:
            setup_logging(level=level, stream=io.StringIO())
