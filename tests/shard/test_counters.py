"""Shard counter aggregation: facade registries and manifest folding."""

from repro.obs.manifest import aggregate_shard_counters
from repro.shard.operator import aggregate_counters


class TestAggregateCounters:
    def test_numeric_counters_sum(self):
        out = aggregate_counters([
            {"probes": 10, "results_produced": 3},
            {"probes": 5, "results_produced": 7},
        ])
        assert out == {"probes": 15, "results_produced": 10}

    def test_max_queue_length_takes_the_max(self):
        out = aggregate_counters([
            {"max_queue_length": 4},
            {"max_queue_length": 9},
            {"max_queue_length": 2},
        ])
        assert out["max_queue_length"] == 9

    def test_non_numeric_and_bool_values_dropped(self):
        out = aggregate_counters([
            {"probes": 1, "label": "x", "enabled": True},
        ])
        assert out == {"probes": 1}


class TestManifestShardFolding:
    def test_shard_namespaces_fold_into_base(self):
        manifest = {
            "counters": {
                "pjoin.shard0": {"probes": 10, "tuples_purged": 3},
                "pjoin.shard1": {"probes": 20, "tuples_purged": 4},
                "sink": {"tuples_in": 30},
            }
        }
        folded = aggregate_shard_counters(manifest)
        assert folded["counters"]["pjoin"] == {
            "probes": 30, "tuples_purged": 7,
        }
        assert "pjoin.shard0" not in folded["counters"]
        assert folded["counters"]["sink"] == {"tuples_in": 30}

    def test_existing_base_registry_wins(self):
        manifest = {
            "counters": {
                "pjoin": {"probes": 30, "max_queue_length": 5},
                "pjoin.shard0": {"probes": 10, "max_queue_length": 5},
                "pjoin.shard1": {"probes": 20, "max_queue_length": 2},
            }
        }
        folded = aggregate_shard_counters(manifest)
        # The facade already aggregated with max/sum semantics; summing
        # the shard registries again would double count.
        assert folded["counters"]["pjoin"] == {
            "probes": 30, "max_queue_length": 5,
        }
        assert list(folded["counters"]) == ["pjoin"]

    def test_unsharded_manifest_passes_through(self):
        manifest = {"counters": {"pjoin": {"probes": 30}}}
        folded = aggregate_shard_counters(manifest)
        assert folded["counters"] == manifest["counters"]

    def test_input_not_modified(self):
        manifest = {"counters": {"pjoin.shard0": {"probes": 1}}}
        aggregate_shard_counters(manifest)
        assert "pjoin.shard0" in manifest["counters"]

    def test_sharded_vs_unsharded_diff_is_clean(self):
        from repro.obs.manifest import diff_counters

        unsharded = {"counters": {"pjoin": {"probes": 30, "results": 100}}}
        sharded = {
            "counters": {
                "pjoin.shard0": {"probes": 12, "results": 40},
                "pjoin.shard1": {"probes": 18, "results": 60},
            }
        }
        rows = diff_counters(
            aggregate_shard_counters(unsharded),
            aggregate_shard_counters(sharded),
        )
        assert rows == []
