"""AlignmentLedger and AlignedMerger unit behaviour."""

from repro.punctuations.patterns import Constant, WILDCARD, make_enumeration
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.shard.merger import AlignedMerger, AlignmentLedger
from repro.shard.routing import shard_cover
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple


class TestAlignmentLedger:
    def test_single_piece_completes_immediately(self):
        ledger = AlignmentLedger()
        ledger.register(Constant(5), [(2, Constant(5))])
        matched, original = ledger.settle(2, Constant(5))
        assert matched
        assert original == Constant(5)
        assert ledger.subscriptions_completed == 1
        assert ledger.subscriptions_open == 0

    def test_multi_piece_waits_for_the_last_shard(self):
        ledger = AlignmentLedger()
        pattern = make_enumeration({1, 2, 3, 4})
        cover = shard_cover(pattern, 3)
        assert len(cover) > 1
        ledger.register(pattern, cover)
        for shard, piece in cover[:-1]:
            matched, original = ledger.settle(shard, piece)
            assert matched
            assert original is None
        shard, piece = cover[-1]
        matched, original = ledger.settle(shard, piece)
        assert matched
        assert original == pattern

    def test_unexpected_piece_is_unmatched(self):
        ledger = AlignmentLedger()
        matched, original = ledger.settle(0, Constant(9))
        assert not matched
        assert original is None

    def test_duplicate_patterns_resolve_fifo(self):
        # Both streams punctuate the same constant: two subscriptions,
        # two completions — one per shard release.
        ledger = AlignmentLedger()
        ledger.register(Constant(7), [(1, Constant(7))])
        ledger.register(Constant(7), [(1, Constant(7))])
        assert ledger.settle(1, Constant(7)) == (True, Constant(7))
        assert ledger.settle(1, Constant(7)) == (True, Constant(7))
        assert ledger.settle(1, Constant(7)) == (False, None)
        assert ledger.subscriptions_completed == 2


LEFT = Schema([Field("key", int), Field("a", int)], name="L")
RIGHT = Schema([Field("key", int), Field("b", int)], name="R")


def make_merger(n_shards=2):
    plan = QueryPlan()
    ledger = AlignmentLedger()
    out_schema = LEFT.concat(RIGHT, name="out")
    from repro.operators.sink import Sink

    merger = AlignedMerger(
        plan.engine, plan.cost_model, n_shards, ledger, out_schema, 0
    )
    sink = Sink(plan.engine, plan.cost_model)
    merger.connect(sink)
    return plan, ledger, merger, sink, out_schema


class TestAlignedMerger:
    def test_tuples_pass_through(self):
        plan, _ledger, merger, sink, out_schema = make_merger()
        merger.push(Tuple(out_schema, (1, 2, 1, 3)), 0)
        merger.push(Tuple(out_schema, (4, 5, 4, 6)), 1)
        plan.engine.run()
        assert sink.tuple_count == 2
        assert merger.tuples_merged == 2

    def test_punctuation_emitted_once_after_all_shards(self):
        plan, ledger, merger, sink, out_schema = make_merger()
        ledger.register(Constant(3), [(0, Constant(3)), (1, Constant(3))])
        patterns = [Constant(3)] + [WILDCARD] * (out_schema.arity - 1)
        merger.push(Punctuation(out_schema, patterns), 0)
        plan.engine.run()
        assert sink.punctuation_count == 0  # still waiting for shard 1
        merger.push(Punctuation(out_schema, patterns), 1)
        plan.engine.run()
        assert sink.punctuation_count == 1
        emitted = sink.punctuations[0]
        assert emitted.patterns[0] == Constant(3)
        assert all(p is WILDCARD for p in emitted.patterns[1:])
        assert merger.punctuations_merged == 1

    def test_unregistered_punctuation_is_held(self):
        plan, _ledger, merger, sink, out_schema = make_merger()
        patterns = [Constant(9)] + [WILDCARD] * (out_schema.arity - 1)
        merger.push(Punctuation(out_schema, patterns), 0)
        plan.engine.run()
        assert sink.punctuation_count == 0
        assert merger.punctuations_unaligned == 1
