"""The sharded stack's equivalence guarantee (in-simulator backend).

* K=1 is byte-identical to the unsharded operator: same result tuples
  with the same virtual timestamps, same punctuations, same engine
  event count.
* K>1 produces the identical result multiset and the identical multiset
  of merged output punctuations, and aggregated flow counters match the
  unsharded run — in particular the purge counters, which pins the
  "shards never purge a tuple the unsharded operator would keep"
  invariant observably.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import PJoinConfig
from repro.experiments.harness import (
    pjoin_factory,
    run_join_experiment,
    shj_factory,
    sharding,
    xjoin_factory,
)
from repro.workloads.generator import generate_workload

# Counters that must sum across shards to the unsharded values on
# constant-punctuation workloads (timing counters legitimately differ).
FLOW_COUNTERS = (
    "tuples_in",
    "results_produced",
    "insertions",
    "tuples_purged",
    "probes",
    "probe_matches",
    "punctuations_in",
)


def run_pair(config, workload, k, keep_items=True):
    base = run_join_experiment(
        pjoin_factory(config), workload, label="base", keep_items=keep_items
    )
    with sharding(k):
        shard = run_join_experiment(
            pjoin_factory(config), workload, label=f"k{k}",
            keep_items=keep_items,
        )
    return base, shard


def signature(run):
    return (
        [(t.values, t.ts) for t in run.sink.results],
        [(tuple(p.patterns), p.ts) for p in run.sink.punctuations],
    )


def punct_multiset(run):
    counts = {}
    for p in run.sink.punctuations:
        key = tuple(p.patterns)
        counts[key] = counts.get(key, 0) + 1
    return counts


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        n_tuples_per_stream=1200, punct_spacing_a=30, punct_spacing_b=30,
        seed=17,
    )


class TestSingleShardByteIdentity:
    def test_results_and_punctuations_identical(self, workload):
        config = PJoinConfig(purge_threshold=1, propagation_mode="push_count")
        base, k1 = run_pair(config, workload, 1)
        assert signature(base) == signature(k1)

    def test_engine_event_count_identical(self, workload):
        base, k1 = run_pair(PJoinConfig(purge_threshold=1), workload, 1)
        assert (
            base.manifest["engine"]["events_executed"]
            == k1.manifest["engine"]["events_executed"]
        )


class TestMultiShardEquivalence:
    @pytest.mark.parametrize("k", [2, 4])
    def test_result_multiset_identical(self, workload, k):
        base, shard = run_pair(PJoinConfig(purge_threshold=1), workload, k)
        assert shard.sink.result_multiset() == base.sink.result_multiset()

    @pytest.mark.parametrize("k", [2, 4])
    def test_merged_punctuations_identical(self, workload, k):
        config = PJoinConfig(purge_threshold=1, propagation_mode="push_count")
        base, shard = run_pair(config, workload, k)
        assert base.punctuations_out > 0
        assert punct_multiset(shard) == punct_multiset(base)

    @pytest.mark.parametrize("k", [2, 4])
    def test_flow_counters_match(self, workload, k):
        base, shard = run_pair(PJoinConfig(purge_threshold=1), workload, k)
        base_counters = base.join.counters()
        shard_counters = shard.join.counters()
        for name in FLOW_COUNTERS:
            assert shard_counters[name] == base_counters[name], name

    def test_virtual_completion_shrinks_with_shards(self, workload):
        # K shards model K cores: per-shard state (and so probe cost)
        # is ~1/K, so the sharded run finishes earlier on the virtual
        # clock once the join is the bottleneck.
        base, shard = run_pair(PJoinConfig(purge_threshold=1), workload, 4)
        assert shard.duration_ms <= base.duration_ms

    def test_no_tuple_purged_that_unsharded_keeps(self, workload):
        # Direct statement of the purge-soundness invariant: summed
        # across shards, exactly as many tuples were purged as the
        # unsharded operator purged — none extra, none early enough to
        # lose results (the result multiset equality pins the latter).
        base, shard = run_pair(PJoinConfig(purge_threshold=1), workload, 4)
        assert (
            shard.join.counters()["tuples_purged"]
            == base.join.counters()["tuples_purged"]
        )
        assert shard.sink.result_multiset() == base.sink.result_multiset()


class TestOtherJoinKinds:
    @pytest.mark.parametrize("factory", [xjoin_factory, shj_factory])
    def test_sharded_variants_reproduce_results(self, workload, factory):
        base = run_join_experiment(
            factory(), workload, label="base", keep_items=True
        )
        with sharding(2):
            shard = run_join_experiment(
                factory(), workload, label="k2", keep_items=True
            )
        assert shard.sink.result_multiset() == base.sink.result_multiset()


class TestSeededWorkloadProperty:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=2, max_value=5),
        spacing=st.sampled_from([10, 25, 50]),
    )
    def test_equivalence_over_random_workloads(self, seed, k, spacing):
        workload = generate_workload(
            n_tuples_per_stream=400,
            punct_spacing_a=spacing,
            punct_spacing_b=spacing,
            seed=seed,
        )
        config = PJoinConfig(purge_threshold=1, propagation_mode="push_count")
        base, shard = run_pair(config, workload, k)
        assert shard.sink.result_multiset() == base.sink.result_multiset()
        assert punct_multiset(shard) == punct_multiset(base)
        assert (
            shard.join.counters()["tuples_purged"]
            == base.join.counters()["tuples_purged"]
        )


class TestManifestIntegration:
    def test_sharded_manifest_has_per_shard_namespaces(self, workload):
        with sharding(2):
            run = run_join_experiment(
                pjoin_factory(PJoinConfig(purge_threshold=1)), workload,
                label="sharded",
            )
        counters = run.manifest["counters"]
        assert "pjoin.shard0" in counters
        assert "pjoin.shard1" in counters
        assert "pjoin.router" in counters
        assert "pjoin.merge" in counters
