"""The multiprocess backend agrees with the in-simulator backend."""

import pytest

from repro.core.config import PJoinConfig
from repro.experiments.harness import pjoin_factory, run_join_experiment
from repro.shard.backend import (
    ShardPlan,
    ShardWorkerPool,
    fork_available,
    run_shard_simulation,
    run_sharded_multiprocess,
)
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload

CONFIG = PJoinConfig(purge_threshold=1, propagation_mode="push_count")


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        n_tuples_per_stream=800, punct_spacing_a=40, punct_spacing_b=40,
        seed=23,
    )


@pytest.fixture(scope="module")
def base(workload):
    return run_join_experiment(
        pjoin_factory(CONFIG), workload, label="base", keep_items=True
    )


def base_punct_multiset(run):
    counts = {}
    for punct in run.sink.punctuations:
        key = punct.patterns[0]
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestShardPlan:
    def test_every_tuple_lands_on_exactly_one_shard(self, workload):
        plan = ShardPlan(workload, 4)
        for side in (0, 1):
            sharded = sum(
                sum(1 for _t, item in plan.schedules[k][side]
                    if isinstance(item, Tuple))
                for k in range(4)
            )
            original = len(workload.tuples(side))
            assert sharded == original

    def test_constant_punctuations_are_not_duplicated(self, workload):
        # End-of-stream markers are appended by the sources at run time,
        # so the planned schedules hold tuples and punctuations only —
        # and each constant punctuation lands on exactly one shard.
        plan = ShardPlan(workload, 4)
        for side in (0, 1):
            sharded = sum(
                sum(1 for _t, item in plan.schedules[k][side]
                    if not isinstance(item, Tuple))
                for k in range(4)
            )
            assert sharded == len(workload.punctuations(side))

    def test_registrations_cover_every_exploitable_punctuation(self, workload):
        plan = ShardPlan(workload, 4)
        expected = len(workload.punctuations(0)) + len(workload.punctuations(1))
        assert len(plan.registrations) == expected


class TestMultiprocessEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_unsharded_reference(self, workload, base, k):
        outcome = run_sharded_multiprocess(workload, k, config=CONFIG)
        assert outcome.result_count == base.results
        assert outcome.result_multiset() == base.sink.result_multiset()
        assert outcome.punctuation_multiset() == base_punct_multiset(base)
        assert outcome.punctuations_unaligned == 0

    def test_counters_aggregate_to_unsharded_flow(self, workload, base):
        outcome = run_sharded_multiprocess(workload, 4, config=CONFIG)
        base_counters = base.join.counters()
        for name in ("tuples_in", "results_produced", "tuples_purged",
                     "probes", "probe_matches"):
            assert outcome.counters[name] == base_counters[name], name

    def test_results_ordered_by_virtual_time(self, workload):
        outcome = run_sharded_multiprocess(workload, 2, config=CONFIG)
        times = [ts for _values, ts in outcome.results]
        assert times == sorted(times)


class TestWorkerPool:
    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_pool_is_reusable_and_deterministic(self, workload):
        plan = ShardPlan(workload, 2)
        pool = ShardWorkerPool(plan, config=CONFIG, keep_items=False)
        try:
            first = pool.run()
            second = pool.run()
        finally:
            pool.close()
        assert first.result_count == second.result_count
        assert first.events == second.events
        assert first.counters == second.counters

    def test_inline_worker_matches_pool_worker(self, workload):
        # run_shard_simulation is the exact function the forked workers
        # execute; running it inline must give the same outcome.
        plan = ShardPlan(workload, 2)
        inline = [
            run_shard_simulation(
                shard, plan.schedules[shard][0], plan.schedules[shard][1],
                workload, CONFIG, True,
            )
            for shard in range(2)
        ]
        outcome = run_sharded_multiprocess(workload, 2, config=CONFIG)
        assert sum(o["result_count"] for o in inline) == outcome.result_count
        assert sum(o["events"] for o in inline) == outcome.events
