"""Routing invariants: ownership, cover soundness, cover completeness.

The three properties every sharded execution leans on:

* every tuple routes to exactly one shard (hash ownership);
* a shard's narrowed pattern never matches a value the original does
  not (soundness — a shard can never purge a tuple the unsharded
  operator would keep);
* every value the original pattern matches is matched by the narrowed
  pattern of the shard owning that value (completeness — the union of
  the per-shard promises is the original promise).
"""

from hypothesis import given, settings, strategies as st

from repro.punctuations.patterns import (
    Constant,
    EMPTY,
    Range,
    WILDCARD,
    make_enumeration,
    make_range,
)
from repro.punctuations.punctuation import Punctuation
from repro.shard.routing import narrow_punctuation, shard_cover, shard_of
from repro.tuples.schema import Field, Schema

SETTINGS = settings(max_examples=200, deadline=None)

SCHEMA = Schema([Field("key", int), Field("seq", int)], name="S")

shard_counts = st.integers(min_value=1, max_value=9)
keys = st.integers(min_value=-(10**6), max_value=10**6)

constants = st.builds(Constant, keys)
enumerations = st.builds(
    lambda values: make_enumeration(values),
    st.sets(keys, min_size=1, max_size=12),
)
# make_range normalises degenerate intervals (to Constant or EMPTY),
# exactly as the punctuation layer builds them.
ranges = st.builds(
    lambda low, width, li, hi: make_range(
        low, low + width, low_inclusive=li, high_inclusive=hi
    ),
    keys,
    st.integers(min_value=0, max_value=1000),
    st.booleans(),
    st.booleans(),
)
patterns = st.one_of(constants, enumerations, ranges, st.just(WILDCARD))


class TestShardOwnership:
    @SETTINGS
    @given(keys, shard_counts)
    def test_every_value_owned_by_exactly_one_shard(self, key, k):
        owner = shard_of(key, k)
        assert 0 <= owner < k
        # Deterministic: the same value always hashes to the same shard.
        assert shard_of(key, k) == owner

    @SETTINGS
    @given(keys)
    def test_single_shard_owns_everything(self, key):
        assert shard_of(key, 1) == 0


class TestCoverSoundness:
    @SETTINGS
    @given(patterns, shard_counts, st.lists(keys, max_size=30))
    def test_narrowed_is_subset_of_original(self, pattern, k, samples):
        for shard, narrowed in shard_cover(pattern, k):
            assert 0 <= shard < k
            for value in samples:
                if narrowed.matches(value):
                    assert pattern.matches(value)

    @SETTINGS
    @given(enumerations, shard_counts)
    def test_enumeration_members_go_only_to_their_owner(self, pattern, k):
        if k == 1:
            return
        for shard, narrowed in shard_cover(pattern, k):
            members = (
                {narrowed.value}
                if isinstance(narrowed, Constant)
                else set(narrowed.values)
            )
            for member in members:
                assert shard_of(member, k) == shard


class TestCoverCompleteness:
    @SETTINGS
    @given(patterns, shard_counts, st.lists(keys, max_size=30))
    def test_owner_shard_still_matches_every_original_value(
        self, pattern, k, samples
    ):
        cover = dict(shard_cover(pattern, k))
        for value in samples:
            if not pattern.matches(value):
                continue
            owner = shard_of(value, k)
            assert owner in cover
            assert cover[owner].matches(value)

    @SETTINGS
    @given(patterns, shard_counts)
    def test_cover_is_sorted_and_unique(self, pattern, k):
        shards = [shard for shard, _ in shard_cover(pattern, k)]
        assert shards == sorted(set(shards))


class TestSpecialCases:
    def test_single_shard_cover_is_identity(self):
        for pattern in (Constant(7), WILDCARD, Range(1, 5), EMPTY):
            assert shard_cover(pattern, 1) == [(0, pattern)]

    def test_empty_pattern_covers_no_shard(self):
        assert shard_cover(EMPTY, 4) == []

    def test_constant_goes_to_its_owner_only(self):
        cover = shard_cover(Constant(42), 8)
        assert cover == [(shard_of(42, 8), Constant(42))]

    def test_range_and_wildcard_broadcast_unchanged(self):
        for pattern in (Range(10, 99), WILDCARD):
            cover = shard_cover(pattern, 3)
            assert cover == [(0, pattern), (1, pattern), (2, pattern)]

    def test_singleton_enumeration_slice_normalises_to_constant(self):
        pattern = make_enumeration({1, 2, 3, 4, 5, 6, 7, 8})
        for _shard, narrowed in shard_cover(pattern, 7):
            if isinstance(narrowed, Constant):
                return  # at least one shard owns exactly one member
        # With 8 members over 7 shards some shard owns exactly one;
        # if not (hash collisions bunched them), the test is vacuous.


class TestNarrowPunctuation:
    def test_rebuilds_only_the_join_pattern(self):
        punct = Punctuation(SCHEMA, [make_enumeration({1, 2, 3}), WILDCARD])
        narrowed = narrow_punctuation(punct, 0, 0, Constant(2))
        assert narrowed.patterns[0] == Constant(2)
        assert narrowed.patterns[1] is WILDCARD
        assert narrowed.ts == punct.ts

    def test_identity_narrowing_returns_same_object(self):
        punct = Punctuation(SCHEMA, [Constant(5), WILDCARD])
        assert narrow_punctuation(punct, 0, 0, punct.patterns[0]) is punct
