"""The ``repro shard`` command and the ``--shards`` experiment flag."""

from repro.cli import main


class TestShardCommand:
    def test_equivalence_check_passes(self, capsys):
        code = main([
            "shard", "--tuples", "500", "--purge-threshold", "1",
            "--shards", "1,2", "--backend", "both", "--propagate", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "unsharded" in out
        assert "K=1" in out and "K=2" in out
        assert "MISMATCH" not in out
        assert "check passed" in out

    def test_sim_backend_only(self, capsys):
        code = main(["shard", "--tuples", "300", "--shards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sim" in out
        assert " mp " not in out

    def test_bad_shard_list_rejected(self, capsys):
        code = 0
        try:
            code = main(["shard", "--shards", "0"])
        except SystemExit as exc:  # argparse exits on bad type
            code = exc.code
        assert code == 2


class TestFiguresShardFlag:
    def test_figures_run_sharded(self, capsys):
        # figure8's shape check (lazy purge stays bounded) is robust to
        # the earlier virtual completion sharding brings; tighter
        # figure-5-style ratio checks can shift marginally under K>1.
        assert main(
            ["figures", "figure8", "--scale", "0.05", "--shards", "2"]
        ) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_shards_conflicts_with_jobs(self, capsys):
        code = main(
            ["figures", "figure5", "--scale", "0.05",
             "--shards", "2", "--jobs", "2"]
        )
        assert code == 2
        assert "--shards cannot be combined" in capsys.readouterr().err


class TestDemoShardFlag:
    def test_demo_runs_sharded(self, capsys):
        code = main(
            ["demo", "--tuples", "300", "--spacing-a", "10",
             "--spacing-b", "10", "--shards", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PJoin" in out and "XJoin" in out
