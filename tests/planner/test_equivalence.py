"""Plan-independence of the n-ary join result (the safety property).

A plan is only a visitation order over the side hash tables, so *every*
probe-order permutation — and the adaptive planner, which moves between
them mid-run — must produce the identical result multiset.  This is the
property that makes :meth:`NaryPJoin.set_plan` an exact state handoff
and runtime re-optimization safe.
"""

from collections import Counter
from itertools import permutations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checkpoint import cover_cut_times_n
from repro.core.config import PJoinConfig
from repro.experiments.harness import run_nary_experiment
from repro.planner import PlannerSpec, get_preset
from repro.workloads.nary import NaryWorkloadSpec, generate_nary_workload

SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

workload_specs = st.builds(
    NaryWorkloadSpec,
    n_streams=st.just(3),
    n_tuples_per_stream=st.integers(60, 150),
    punct_spacings=st.tuples(
        *[st.one_of(st.none(), st.integers(2, 30).map(float))] * 3
    ),
    active_values=st.integers(1, 8),
    seed=st.integers(0, 100_000),
)


def multiset_of(run):
    return Counter(dict(run.sink.result_multiset()))


def run_with(workload, planner, purge_threshold=4):
    return run_nary_experiment(
        workload,
        config=PJoinConfig(purge_threshold=purge_threshold),
        planner=planner,
        keep_items=True,
    )


@SETTINGS
@given(spec=workload_specs)
def test_every_probe_order_permutation_is_equivalent(spec):
    """All 3! static orders and the adaptive planner agree exactly."""
    workload = generate_nary_workload(spec)
    reference = None
    for order in permutations(range(3)):
        run = run_with(
            workload, PlannerSpec(mode="static", initial_order=order)
        )
        result = multiset_of(run)
        if reference is None:
            reference = result
        else:
            assert result == reference, f"order {order} diverged"
    adaptive = run_with(
        workload, PlannerSpec(mode="adaptive", reopt_interval=1)
    )
    assert multiset_of(adaptive) == reference


def test_adaptive_matches_static_on_the_drift_preset():
    """The showcase workload: switches happen, results do not move."""
    workload = generate_nary_workload(
        get_preset("nary_drift", scale=0.1)
    )
    static = run_with(workload, PlannerSpec(mode="static"), purge_threshold=8)
    adaptive = run_with(
        workload,
        PlannerSpec(mode="adaptive", reopt_interval=2),
        purge_threshold=8,
    )
    assert multiset_of(adaptive) == multiset_of(static)
    assert adaptive.join.reoptimizer.switches >= 1


def test_boundaries_align_with_checkpoint_cover_cuts():
    """The re-plan points are exactly the checkpoint layer's cover cuts."""
    every = 4
    workload = generate_nary_workload(
        n_streams=3,
        n_tuples_per_stream=400,
        punct_spacings=(10.0, 20.0, 30.0),
        seed=3,
    )
    run = run_with(
        workload,
        PlannerSpec(mode="adaptive", reopt_interval=1),
        purge_threshold=every,
    )
    predicted = cover_cut_times_n(
        workload.schedules, workload.join_fields, every=every
    )
    assert run.join.reoptimizer.boundaries == len(predicted)


def test_uniform_preset_holds_the_identity_order():
    """Symmetric streams give the planner no reason to move."""
    workload = generate_nary_workload(get_preset("nary_uniform", scale=0.1))
    run = run_with(
        workload, PlannerSpec(mode="adaptive", reopt_interval=2),
        purge_threshold=8,
    )
    assert run.join.stream_order == (0, 1, 2)
    assert run.join.reoptimizer.switches == 0
