"""Hand-computed expectations for the planner's cost model."""

import pytest

from repro.planner.cost import MAX_PUNCT_DISCOUNT, PlannerCostModel
from repro.planner.stats import StreamStats
from repro.sim.costs import CostModel


def mk_stats(
    side,
    occ=10.0,
    arrival=1.0,
    punct=0.0,
    hit=1.0,
    matches=1.0,
    state=0.0,
):
    return StreamStats(
        side=side,
        name=f"S{side}",
        state_size=state,
        arrival_rate=arrival,
        punct_rate=punct,
        hit_rate=hit,
        avg_matches=matches,
        avg_occupancy=occ,
        purge_lag_ms=0.0,
    )


class TestDiscount:
    def test_ratio_of_punctuation_to_arrival_rate(self):
        cm = PlannerCostModel()
        assert cm.discount(mk_stats(0, punct=0.5, arrival=1.0)) == 0.5

    def test_capped_at_max_discount(self):
        cm = PlannerCostModel()
        assert cm.discount(mk_stats(0, punct=5.0, arrival=1.0)) == (
            MAX_PUNCT_DISCOUNT
        )

    def test_zero_arrival_rate_is_fully_discounted(self):
        cm = PlannerCostModel()
        assert cm.discount(mk_stats(0, punct=1.0, arrival=0.0)) == (
            MAX_PUNCT_DISCOUNT
        )

    def test_no_punctuations_no_discount(self):
        cm = PlannerCostModel()
        assert cm.discount(mk_stats(0, punct=0.0)) == 0.0


class TestEffectiveOccupancy:
    def test_discount_compounds_per_stage(self):
        cm = PlannerCostModel()
        stats = mk_stats(0, occ=10.0, punct=0.5, arrival=1.0)  # discount 0.5
        assert cm.effective_occupancy(stats, 0) == pytest.approx(5.0)
        assert cm.effective_occupancy(stats, 1) == pytest.approx(2.5)

    def test_falls_back_to_state_size_without_probe_samples(self):
        cm = PlannerCostModel()
        stats = mk_stats(0, occ=0.0, state=40.0)
        assert cm.effective_occupancy(stats, 0) == pytest.approx(40.0)


class TestPipelineCost:
    """One arriving tuple's expected probe work, computed by hand."""

    def setup_method(self):
        self.cm = PlannerCostModel(probe_per_tuple=0.01, emit_result=0.002)
        self.stats = [
            mk_stats(0),
            mk_stats(1, occ=10.0, hit=0.5, matches=0.5),
            mk_stats(2, occ=20.0, hit=1.0, matches=2.0),
        ]

    def test_selective_side_first(self):
        # stage 0: 1.0 * 0.01 * 10 = 0.1; reach drops to 0.5
        # stage 1: 0.5 * 0.01 * 20 = 0.1
        # emit:    0.5 * 0.002 * (0.5 * 2.0) = 0.001
        total, stages = self.cm.pipeline_cost(
            self.stats[0], (1, 2), self.stats
        )
        assert total == pytest.approx(0.201)
        assert [s.reach for s in stages] == [1.0, 0.5]
        assert stages[0].cost == pytest.approx(0.1)
        assert stages[1].cost == pytest.approx(0.1)

    def test_expensive_unselective_side_first_costs_more(self):
        # stage 0: 1.0 * 0.01 * 20 = 0.2; reach stays 1.0 (hit 1.0)
        # stage 1: 1.0 * 0.01 * 10 = 0.1
        # emit:    0.5 * 0.002 * 1.0 = 0.001
        total, _ = self.cm.pipeline_cost(self.stats[0], (2, 1), self.stats)
        assert total == pytest.approx(0.301)

    def test_miss_prone_cheap_side_first_wins(self):
        cheap, costly = (
            self.cm.pipeline_cost(self.stats[0], (1, 2), self.stats)[0],
            self.cm.pipeline_cost(self.stats[0], (2, 1), self.stats)[0],
        )
        assert cheap < costly


class TestPlanCost:
    def test_symmetric_two_way_hand_computed(self):
        cm = PlannerCostModel(probe_per_tuple=0.01, emit_result=0.002)
        stats = [mk_stats(0), mk_stats(1)]
        cand = cm.plan_cost((0, 1), stats)
        # per side: arrival 1.0 * (0.01 * 10 + 0.002) = 0.102
        assert cand.per_side == pytest.approx((0.102, 0.102))
        assert cand.total == pytest.approx(0.204)

    def test_total_is_arrival_weighted_sum_of_pipelines(self):
        cm = PlannerCostModel(probe_per_tuple=0.01, emit_result=0.002)
        stats = [
            mk_stats(0, arrival=2.0),
            mk_stats(1, arrival=0.5, occ=4.0),
            mk_stats(2, arrival=1.0, occ=8.0, hit=0.25),
        ]
        cand = cm.plan_cost((2, 1, 0), stats)
        assert cand.total == pytest.approx(sum(cand.per_side))
        for side, contribution in enumerate(cand.per_side):
            probe_order = tuple(o for o in (2, 1, 0) if o != side)
            per_tuple, _ = cm.pipeline_cost(stats[side], probe_order, stats)
            assert contribution == pytest.approx(
                stats[side].arrival_rate * per_tuple
            )

    def test_as_dict_round_trips_order_and_total(self):
        cand = PlannerCostModel().plan_cost((1, 0), [mk_stats(0), mk_stats(1)])
        payload = cand.as_dict()
        assert payload["order"] == [1, 0]
        assert payload["total"] == pytest.approx(cand.total)


class TestIntegrationWithSimCostModel:
    def test_inherits_probe_and_emit_coefficients(self):
        sim = CostModel().with_overrides(probe_per_candidate=0.04)
        cm = PlannerCostModel.from_cost_model(sim)
        assert cm.probe_per_tuple == pytest.approx(0.04)
        assert cm.emit_result == pytest.approx(sim.emit_result)

    def test_defaults_without_a_sim_model(self):
        cm = PlannerCostModel.from_cost_model(None)
        default = CostModel()
        assert cm.probe_per_tuple == pytest.approx(default.probe_per_candidate)

    def test_planning_cost_linear_in_candidates(self):
        cm = PlannerCostModel(plan_eval_cost=0.01)
        assert cm.planning_cost(6) == pytest.approx(0.06)
        assert cm.planning_cost(0) == 0.0
