"""Windowed statistics collection over a stub counter registry."""

import pytest

from repro.planner.stats import StatsCollector


class _StubEngine:
    def __init__(self):
        self.now = 0.0


class _StubSide:
    def __init__(self, name):
        self.side_name = name


class _StubJoin:
    """Quacks like NaryPJoin for the collector: counters + sides."""

    def __init__(self, n=2):
        self.engine = _StubEngine()
        self.sides = [_StubSide(f"input{i}") for i in range(n)]
        self.registry = {}
        self.last_purge_ms = 0.0

    def counters(self):
        return dict(self.registry)

    def set_side(self, side, **values):
        for key, value in values.items():
            self.registry[f"side.input{side}.{key}"] = value


@pytest.fixture
def join():
    stub = _StubJoin()
    stub.set_side(
        0, state_size=7, tuples_in=20, probe_count=10, probe_hits=5,
        match_count=20, probe_occupancy=100, punct_count=5,
    )
    stub.set_side(
        1, state_size=3, tuples_in=10, probe_count=4, probe_hits=4,
        match_count=4, probe_occupancy=8, punct_count=0,
    )
    return stub


class TestFirstWindow:
    def test_rates_are_cumulative_over_elapsed_time(self, join):
        collector = StatsCollector(join)
        (s0, s1) = collector.collect(now=10.0)
        assert s0.arrival_rate == pytest.approx(2.0)   # 20 tuples / 10 ms
        assert s0.punct_rate == pytest.approx(0.5)
        assert s1.arrival_rate == pytest.approx(1.0)
        assert s1.punct_rate == 0.0

    def test_ratios_from_probe_counters(self, join):
        collector = StatsCollector(join)
        (s0, s1) = collector.collect(now=10.0)
        assert s0.hit_rate == pytest.approx(0.5)       # 5 hits / 10 probes
        assert s0.avg_matches == pytest.approx(2.0)    # 20 matches / 10
        assert s0.avg_occupancy == pytest.approx(10.0)  # 100 scanned / 10
        assert s1.hit_rate == pytest.approx(1.0)

    def test_state_and_names_pass_through(self, join):
        (s0, s1) = StatsCollector(join).collect(now=10.0)
        assert (s0.side, s0.name, s0.state_size) == (0, "input0", 7.0)
        assert (s1.side, s1.name, s1.state_size) == (1, "input1", 3.0)


class TestRollingWindows:
    def test_rates_are_ewma_blended(self, join):
        collector = StatsCollector(join, smoothing=0.5)
        collector.collect(now=10.0)                    # rate 2.0
        join.set_side(0, tuples_in=30)                 # +10 in 10 ms -> 1.0
        (s0, _) = collector.collect(now=20.0)
        assert s0.arrival_rate == pytest.approx(0.5 * 1.0 + 0.5 * 2.0)

    def test_window_without_probes_falls_back_to_cumulative(self, join):
        collector = StatsCollector(join)
        collector.collect(now=10.0)
        (s0, _) = collector.collect(now=20.0)          # no new probes
        assert s0.hit_rate == pytest.approx(0.5)       # cumulative 5/10
        assert s0.avg_occupancy == pytest.approx(10.0)

    def test_zero_width_window_returns_last_stats(self, join):
        collector = StatsCollector(join)
        first = collector.collect(now=10.0)
        assert collector.collect(now=10.0) is first
        assert collector.collections == 1

    def test_purge_lag_from_last_purge(self, join):
        collector = StatsCollector(join)
        join.last_purge_ms = 15.0
        (s0, _) = collector.collect(now=20.0)
        assert s0.purge_lag_ms == pytest.approx(5.0)

    def test_hit_rate_capped_at_one(self, join):
        join.set_side(0, probe_hits=25)                # corrupt: hits > probes
        (s0, _) = StatsCollector(join).collect(now=10.0)
        assert s0.hit_rate == 1.0

    def test_last_property_and_as_dict(self, join):
        collector = StatsCollector(join)
        assert collector.last is None
        stats = collector.collect(now=10.0)
        assert collector.last is stats
        payload = stats[0].as_dict()
        assert payload["arrival_rate"] == pytest.approx(2.0)
        assert set(payload) == {
            "state_size", "arrival_rate", "punct_rate", "hit_rate",
            "avg_matches", "avg_occupancy", "purge_lag_ms",
        }
