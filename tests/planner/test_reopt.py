"""The runtime re-optimizer on a live NaryPJoin."""

import pytest

from repro.core.config import PJoinConfig
from repro.core.nary import NaryPJoin
from repro.errors import PlannerError
from repro.operators.sink import Sink
from repro.planner import PlannerSpec
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMAS = [
    Schema.of("key", "a", name="A"),
    Schema.of("key", "b", name="B"),
    Schema.of("key", "c", name="C"),
]


def tup(stream, key, v=0):
    return Tuple(SCHEMAS[stream], (key, v))


def punct(stream, spec):
    return Punctuation.on_field(SCHEMAS[stream], "key", spec)


def build(engine, cheap_cost_model, planner=None, config=None):
    join = NaryPJoin(
        engine, cheap_cost_model, SCHEMAS, ["key"] * 3,
        config=config, planner=planner,
    )
    sink = Sink(engine, cheap_cost_model, keep_items=True)
    join.connect(sink)
    return join, sink


class TestPlanInstallation:
    def test_default_plan_is_stream_order(self, engine, cheap_cost_model):
        join, _ = build(engine, cheap_cost_model)
        assert join.stream_order == (0, 1, 2)
        assert join.probe_orders[0] == (1, 2)
        assert join.purge_order == (0, 1, 2)
        assert join.reoptimizer is None

    def test_static_initial_order(self, engine, cheap_cost_model):
        spec = PlannerSpec(mode="static", initial_order=(1, 0, 2))
        join, _ = build(engine, cheap_cost_model, planner=spec)
        assert join.stream_order == (1, 0, 2)
        assert join.probe_orders[1] == (0, 2)
        assert join.reoptimizer is None

    def test_set_plan_rewrites_probe_and_purge_orders(
        self, engine, cheap_cost_model
    ):
        join, _ = build(engine, cheap_cost_model)
        probe_orders = join.probe_orders  # fastpath captures this list
        join.set_plan((2, 1, 0))
        assert join.stream_order == (2, 1, 0)
        assert join.purge_order == (2, 1, 0)
        assert probe_orders[0] == (2, 1)   # mutated in place
        assert probe_orders[2] == (1, 0)

    def test_set_plan_rejects_non_permutations(self, engine, cheap_cost_model):
        join, _ = build(engine, cheap_cost_model)
        with pytest.raises(PlannerError):
            join.set_plan((0, 1))
        with pytest.raises(PlannerError):
            join.set_plan((0, 1, 1))

    def test_adaptive_spec_attaches_a_reoptimizer(
        self, engine, cheap_cost_model
    ):
        spec = PlannerSpec(mode="adaptive")
        join, _ = build(engine, cheap_cost_model, planner=spec)
        assert join.reoptimizer is not None
        assert join.reoptimizer.spec is spec

    def test_adaptive_declines_the_fast_path(self, engine, cheap_cost_model):
        static, _ = build(engine, cheap_cost_model)
        adaptive, _ = build(
            engine, cheap_cost_model, planner=PlannerSpec(mode="adaptive")
        )
        assert "handle" in vars(static)      # specialized closure installed
        assert "handle" not in vars(adaptive)


class TestBoundaries:
    def feed(self, engine, join, keys=range(6)):
        for key in keys:
            for stream in range(3):
                join.push(tup(stream, key), stream)
        engine.run()

    def test_interval_boundaries_are_counted_not_replanned(
        self, engine, cheap_cost_model
    ):
        spec = PlannerSpec(mode="adaptive", reopt_interval=2)
        join, _ = build(engine, cheap_cost_model, planner=spec)
        self.feed(engine, join)
        reopt = join.reoptimizer
        assert reopt.on_cover_boundary() == 0.0      # boundary 1: skipped
        assert reopt.reopt_count == 0
        cost = reopt.on_cover_boundary()             # boundary 2: replans
        assert cost > 0.0                            # planning is charged
        assert reopt.reopt_count == 1
        assert reopt.boundaries == 2
        assert len(reopt.decisions) == 1
        assert reopt.decisions[-1].boundary == 2

    def test_purge_boundaries_drive_the_reoptimizer(
        self, engine, cheap_cost_model
    ):
        spec = PlannerSpec(mode="adaptive", reopt_interval=1)
        join, _ = build(
            engine, cheap_cost_model, planner=spec,
            config=PJoinConfig(purge_threshold=1),
        )
        self.feed(engine, join)
        # Covering key 0 on every stream completes one purge run.
        for stream in range(3):
            join.push(punct(stream, 0), stream)
        engine.run()
        assert join.purge_runs >= 1
        assert join.reoptimizer.boundaries == join.purge_runs
        assert join.reoptimizer.reopt_count == join.purge_runs

    def test_huge_hysteresis_blocks_every_switch(
        self, engine, cheap_cost_model
    ):
        spec = PlannerSpec(mode="adaptive", reopt_interval=1, hysteresis=1e6)
        join, _ = build(engine, cheap_cost_model, planner=spec)
        # Make the incumbent order maximally wrong: stream 0 heavy.
        self.feed(engine, join, keys=range(8))
        reopt = join.reoptimizer
        for _ in range(4):
            reopt.on_cover_boundary()
        assert reopt.switches == 0
        assert all(not d.switched for d in reopt.decisions)
        assert join.stream_order == (0, 1, 2)

    def test_decision_ring_is_bounded(self, engine, cheap_cost_model):
        spec = PlannerSpec(mode="adaptive", reopt_interval=1, max_decisions=2)
        join, _ = build(engine, cheap_cost_model, planner=spec)
        self.feed(engine, join)
        reopt = join.reoptimizer
        for _ in range(5):
            reopt.on_cover_boundary()
        assert reopt.reopt_count == 5
        assert len(reopt.decisions) == 2
        assert len(reopt.decision_log()) == 2

    def test_decision_log_is_json_shaped(self, engine, cheap_cost_model):
        spec = PlannerSpec(mode="adaptive", reopt_interval=1)
        join, _ = build(engine, cheap_cost_model, planner=spec)
        self.feed(engine, join)
        join.reoptimizer.on_cover_boundary()
        (entry,) = join.reoptimizer.decision_log()
        assert set(entry) >= {
            "at_ms", "boundary", "previous", "chosen", "switched",
            "current_cost", "best_cost", "cost_delta",
        }
        assert entry["previous"] == [0, 1, 2]
        assert entry["cost_delta"] >= 0.0


class TestObservability:
    def test_planner_counters_in_the_registry(self, engine, cheap_cost_model):
        spec = PlannerSpec(mode="adaptive", reopt_interval=1)
        join, _ = build(engine, cheap_cost_model, planner=spec)
        join.push(tup(0, 1), 0)
        engine.run()
        join.reoptimizer.on_cover_boundary()
        counters = join.counters()
        assert counters["planner.reopt.count"] == 1.0
        assert counters["planner.boundaries"] == 1.0
        assert "planner.switches" in counters
        assert "planner.last_cost_delta" in counters
        assert "planner.cumulative_cost_delta" in counters

    def test_static_join_publishes_no_planner_counters(
        self, engine, cheap_cost_model
    ):
        join, _ = build(engine, cheap_cost_model)
        assert not any(k.startswith("planner.") for k in join.counters())

    def test_snapshot_restore_round_trips_the_plan(
        self, engine, cheap_cost_model
    ):
        join, _ = build(engine, cheap_cost_model)
        for stream in range(3):
            join.push(tup(stream, 1), stream)
        engine.run()
        join.set_plan((2, 0, 1))
        snap = join.snapshot_state()
        other, _ = build(engine, cheap_cost_model)
        other.restore_state(snap)
        assert other.stream_order == (2, 0, 1)
        assert other.side_tuples_in == join.side_tuples_in
        assert other.side_tuples_in is not join.side_tuples_in
