"""Candidate enumeration, the greedy heuristic, and plan choice."""

import pytest

from repro.errors import PlannerError
from repro.planner.cost import PlannerCostModel
from repro.planner.plans import (
    EXHAUSTIVE_LIMIT,
    candidate_orders,
    choose_plan,
    greedy_order,
)

from .test_cost import mk_stats


class TestCandidateOrders:
    def test_exhaustive_up_to_the_limit(self):
        assert len(candidate_orders(3)) == 6
        assert len(set(candidate_orders(EXHAUSTIVE_LIMIT))) == 24

    def test_rejects_degenerate_joins(self):
        with pytest.raises(PlannerError):
            candidate_orders(1)

    def test_greedy_needs_stats_beyond_the_limit(self):
        with pytest.raises(PlannerError):
            candidate_orders(EXHAUSTIVE_LIMIT + 1)

    def test_greedy_seed_plus_adjacent_swaps(self):
        cm = PlannerCostModel()
        stats = [mk_stats(i, occ=float(10 * (i + 1))) for i in range(5)]
        candidates = candidate_orders(5, stats, cm)
        assert candidates[0] == (0, 1, 2, 3, 4)  # cheapest-first seed
        assert len(candidates) == 5              # seed + 4 adjacent swaps
        assert (1, 0, 2, 3, 4) in candidates

    def test_incumbent_is_kept_as_a_candidate(self):
        cm = PlannerCostModel()
        stats = [mk_stats(i, occ=float(10 * (i + 1))) for i in range(5)]
        incumbent = (4, 3, 2, 1, 0)
        candidates = candidate_orders(5, stats, cm, current=incumbent)
        assert incumbent in candidates
        # ... but not duplicated when it already is one.
        again = candidate_orders(5, stats, cm, current=(0, 1, 2, 3, 4))
        assert len(again) == len(set(again)) == 5


class TestGreedyOrder:
    def test_cheap_sides_first(self):
        cm = PlannerCostModel()
        stats = [mk_stats(0, occ=30.0), mk_stats(1, occ=1.0),
                 mk_stats(2, occ=10.0)]
        assert greedy_order(stats, cm) == (1, 2, 0)

    def test_selectivity_beats_raw_occupancy(self):
        cm = PlannerCostModel()
        # Side 0 scans 10 but misses 90% (rank 1.0); side 1 scans 5 and
        # always hits (rank 5.0): probe the miss-prone side first.
        stats = [mk_stats(0, occ=10.0, hit=0.1), mk_stats(1, occ=5.0)]
        assert greedy_order(stats, cm) == (0, 1)

    def test_ties_break_toward_lower_index(self):
        cm = PlannerCostModel()
        stats = [mk_stats(0), mk_stats(1), mk_stats(2)]
        assert greedy_order(stats, cm) == (0, 1, 2)


class TestChoosePlan:
    def test_symmetric_stats_keep_the_identity_order(self):
        choice = choose_plan([mk_stats(i) for i in range(3)])
        assert choice.order == (0, 1, 2)
        assert choice.exhaustive
        assert len(choice.candidates) == 6
        assert choice.cost == pytest.approx(choice.best.total)

    def test_prefers_probing_the_selective_cheap_side_first(self):
        stats = [
            mk_stats(0, occ=10.0),
            mk_stats(1, occ=2.0, hit=0.2),   # cheap and miss-prone
            mk_stats(2, occ=50.0),           # expensive
        ]
        choice = choose_plan(stats)
        probe_of_0 = tuple(o for o in choice.order if o != 0)
        assert probe_of_0 == (1, 2)

    def test_candidates_sorted_best_first(self):
        choice = choose_plan(
            [mk_stats(0, occ=5.0), mk_stats(1, occ=20.0), mk_stats(2)]
        )
        totals = [cand.total for cand in choice.candidates]
        assert totals == sorted(totals)

    def test_candidate_for_lookup(self):
        cm = PlannerCostModel()
        stats = [mk_stats(i, occ=float(10 * (i + 1))) for i in range(5)]
        choice = choose_plan(stats, cm)
        assert choice.candidate_for((0, 1, 2, 3, 4)) is not None
        assert choice.candidate_for((2, 0, 1, 3, 4)) is None  # not enumerated

    def test_explain_marks_the_winner(self):
        choice = choose_plan([mk_stats(0), mk_stats(1, occ=30.0), mk_stats(2)])
        text = choice.explain(["A", "B", "C"])
        assert "<- chosen" in text
        assert "A" in text and "B" in text
        assert "exhaustive: 6 candidates" in text

    def test_as_dict_is_json_shaped(self):
        choice = choose_plan([mk_stats(0), mk_stats(1)])
        payload = choice.as_dict()
        assert payload["order"] == list(choice.order)
        assert payload["exhaustive"] is True
        assert len(payload["candidates"]) == 2
