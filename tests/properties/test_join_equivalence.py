"""Property-based equivalence of every join variant with the oracle.

The central correctness invariant of the whole system (DESIGN.md §5.2):
for *any* valid punctuated workload and *any* configuration — purge
threshold, memory threshold, on-the-fly drop, propagation mode — PJoin
emits exactly the reference join's result multiset.  Purging never
loses a result; spilling and disk joins never lose or duplicate one.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.shj import SymmetricHashJoin
from repro.operators.sink import Sink
from repro.operators.xjoin import XJoin
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset
from repro.workloads.spec import WorkloadSpec

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

workload_specs = st.builds(
    WorkloadSpec,
    n_tuples_per_stream=st.integers(50, 350),
    punct_spacing_a=st.one_of(st.none(), st.integers(2, 40)),
    punct_spacing_b=st.one_of(st.none(), st.integers(2, 40)),
    active_values=st.integers(1, 15),
    seed=st.integers(0, 100_000),
)


def run_join(make_join, workload):
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    join = make_join(plan)
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    plan.run()
    return join, Counter(dict(sink.result_multiset()))


def reference_of(workload):
    return reference_join_multiset(
        workload.schedule_a,
        workload.schedule_b,
        workload.schemas[0],
        workload.schemas[1],
    )


def pjoin_builder(workload, config):
    def make(plan):
        return PJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key", config=config,
        )

    return make


@SETTINGS
@given(spec=workload_specs, purge_threshold=st.integers(1, 50))
def test_pjoin_equals_reference_for_any_purge_threshold(spec, purge_threshold):
    workload = generate_workload(spec)
    config = PJoinConfig(purge_threshold=purge_threshold)
    _join, got = run_join(pjoin_builder(workload, config), workload)
    assert got == reference_of(workload)


@SETTINGS
@given(
    spec=workload_specs,
    memory_threshold=st.integers(10, 120),
    drop=st.booleans(),
)
def test_pjoin_equals_reference_under_memory_pressure(spec, memory_threshold, drop):
    workload = generate_workload(spec)
    config = PJoinConfig(
        purge_threshold=3,
        memory_threshold=memory_threshold,
        on_the_fly_drop=drop,
    )
    join, got = run_join(pjoin_builder(workload, config), workload)
    assert got == reference_of(workload)
    # The memory bound is actually enforced after every arrival.
    assert join.memory_state_size() < memory_threshold


@SETTINGS
@given(spec=workload_specs)
def test_pjoin_with_propagation_equals_reference(spec):
    workload = generate_workload(spec)
    config = PJoinConfig(
        purge_threshold=2,
        index_building="eager",
        propagation_mode="push_count",
        propagate_count_threshold=4,
    )
    _join, got = run_join(pjoin_builder(workload, config), workload)
    assert got == reference_of(workload)


@SETTINGS
@given(spec=workload_specs, memory_threshold=st.integers(10, 100))
def test_xjoin_equals_reference_under_memory_pressure(spec, memory_threshold):
    workload = generate_workload(spec)

    def make(plan):
        return XJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
            memory_threshold=memory_threshold,
        )

    _join, got = run_join(make, workload)
    assert got == reference_of(workload)


@SETTINGS
@given(spec=workload_specs)
def test_all_join_variants_agree(spec):
    """PJoin, XJoin and SHJ all produce the identical multiset."""
    workload = generate_workload(spec)

    def make_shj(plan):
        return SymmetricHashJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
        )

    _j1, shj = run_join(make_shj, workload)
    _j2, pjoin = run_join(
        pjoin_builder(workload, PJoinConfig(purge_threshold=1)), workload
    )
    assert shj == pjoin == reference_of(workload)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pjoin_purge_buffer_path_is_exercised_and_correct(seed):
    """A deterministic configuration known to route tuples through the
    purge buffer (spill + punctuations on spilled buckets)."""
    workload = generate_workload(
        n_tuples_per_stream=800, punct_spacing_a=8, punct_spacing_b=30, seed=seed
    )
    config = PJoinConfig(purge_threshold=2, memory_threshold=60)
    join, got = run_join(pjoin_builder(workload, config), workload)
    assert got == reference_of(workload)
    assert join.spills > 0
    assert join.sides[0].tuples_buffered + join.sides[1].tuples_buffered > 0
