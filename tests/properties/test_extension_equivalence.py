"""Property-based correctness of the Section 6 extensions.

* WindowedPJoin must equal the *window-join oracle* for any workload:
  punctuation purging and window expiry may each remove state, but
  neither may cost a single in-window result.
* NaryPJoin must equal a nested-loop three-way oracle for any random
  interleaving, purge threshold and propagation setting.
"""

import random
from collections import Counter
from itertools import product

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import PJoinConfig
from repro.core.nary import NaryPJoin
from repro.core.windowed import WindowedPJoin
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_window_join_multiset
from repro.workloads.spec import WorkloadSpec

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

workload_specs = st.builds(
    WorkloadSpec,
    n_tuples_per_stream=st.integers(50, 250),
    punct_spacing_a=st.one_of(st.none(), st.integers(2, 30)),
    punct_spacing_b=st.one_of(st.none(), st.integers(2, 30)),
    active_values=st.integers(1, 10),
    seed=st.integers(0, 100_000),
)


@SETTINGS
@given(
    spec=workload_specs,
    window_ms=st.floats(5.0, 500.0),
    purge_threshold=st.integers(1, 30),
)
def test_windowed_pjoin_equals_window_oracle(spec, window_ms, purge_threshold):
    workload = generate_workload(spec)
    plan = QueryPlan(cost_model=CostModel().scaled(0.001))
    join = WindowedPJoin(
        plan.engine, plan.cost_model,
        workload.schemas[0], workload.schemas[1], "key", "key",
        config=PJoinConfig(purge_threshold=purge_threshold),
        window_ms=window_ms,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    plan.run()
    expected = reference_window_join_multiset(
        workload.schedule_a, workload.schedule_b,
        workload.schemas[0], workload.schemas[1],
        window_ms=window_ms,
    )
    assert Counter(dict(sink.result_multiset())) == expected


NARY_SCHEMAS = [
    Schema.of("key", "a", name="S0"),
    Schema.of("key", "b", name="S1"),
    Schema.of("key", "c", name="S2"),
]


def make_nary_workload(seed, n_keys, tuples_per_stream):
    """Three random valid punctuated streams over a shared key space.

    Keys are punctuated per-stream in increasing order; a stream only
    draws keys it has not punctuated yet, so validity holds by
    construction (mirroring the binary generator).
    """
    rng = random.Random(seed)
    schedules = [[], [], []]
    lo = [0, 0, 0]
    t = 0.0
    for _ in range(tuples_per_stream * 3):
        t += rng.random()
        stream = rng.randrange(3)
        if lo[stream] < n_keys - 1 and rng.random() < 0.15:
            schedules[stream].append(
                (t, Punctuation.on_field(NARY_SCHEMAS[stream], "key",
                                         lo[stream], ts=t))
            )
            lo[stream] += 1
            continue
        key = rng.randrange(lo[stream], n_keys)
        schedules[stream].append(
            (t, Tuple(NARY_SCHEMAS[stream], (key, rng.randrange(100)), ts=t))
        )
    return schedules


def nary_oracle(schedules):
    streams = [
        [item for _t, item in schedule if isinstance(item, Tuple)]
        for schedule in schedules
    ]
    return Counter(
        a.values + b.values + c.values
        for a, b, c in product(*streams)
        if a.values[0] == b.values[0] == c.values[0]
    )


@SETTINGS
@given(
    seed=st.integers(0, 100_000),
    n_keys=st.integers(2, 8),
    purge_threshold=st.integers(1, 10),
    drop=st.booleans(),
)
def test_nary_pjoin_equals_oracle(seed, n_keys, purge_threshold, drop):
    schedules = make_nary_workload(seed, n_keys, tuples_per_stream=40)
    plan = QueryPlan(cost_model=CostModel().scaled(0.001))
    join = NaryPJoin(
        plan.engine, plan.cost_model, NARY_SCHEMAS, ["key"] * 3,
        config=PJoinConfig(
            purge_threshold=purge_threshold,
            on_the_fly_drop=drop,
            propagation_mode="push_count",
            propagate_count_threshold=3,
        ),
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    for port, schedule in enumerate(schedules):
        plan.add_source(schedule, join, port=port)
    plan.run()
    assert Counter(t.values for t in sink.results) == nary_oracle(schedules)
