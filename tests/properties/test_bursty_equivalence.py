"""Property test: joins stay exact under bursts, lulls and spilling.

Bursty timing is the adversarial case for the staged execution: spills
happen mid-burst, reactive disk joins fire during silences, and the
clean-up stage has to finish whatever is left — with pairs potentially
producible by any of the three stages.  The output must still be the
oracle multiset, for any random combination of burst shape, memory
threshold and purge threshold.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.sink import Sink
from repro.operators.xjoin import XJoin
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.bursty import make_bursty
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run(make_join, workload):
    # A light cost model keeps bursts digestible so silences are real
    # lulls and the reactive stage actually participates.
    plan = QueryPlan(cost_model=CostModel().scaled(0.05))
    join = make_join(plan)
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0)
    plan.add_source(workload.schedule_b, join, port=1)
    plan.run()
    return join, Counter(dict(sink.result_multiset()))


@SETTINGS
@given(
    seed=st.integers(0, 10_000),
    spacing=st.one_of(st.none(), st.integers(5, 30)),
    memory_threshold=st.integers(30, 150),
    burst_ms=st.floats(50.0, 300.0),
    silence_ms=st.floats(50.0, 600.0),
)
def test_xjoin_exact_on_bursty_streams(
    seed, spacing, memory_threshold, burst_ms, silence_ms
):
    smooth = generate_workload(
        n_tuples_per_stream=250,
        punct_spacing_a=spacing,
        punct_spacing_b=spacing,
        seed=seed,
    )
    workload = make_bursty(
        smooth, burst_ms=burst_ms, silence_ms=silence_ms, compress=0.5
    )

    def make(plan):
        return XJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
            memory_threshold=memory_threshold,
        )

    _join, got = run(make, workload)
    expected = reference_join_multiset(
        workload.schedule_a, workload.schedule_b,
        workload.schemas[0], workload.schemas[1],
    )
    assert got == expected


@SETTINGS
@given(
    seed=st.integers(0, 10_000),
    spacing_a=st.integers(5, 25),
    spacing_b=st.integers(5, 40),
    memory_threshold=st.integers(30, 120),
    purge_threshold=st.integers(1, 20),
)
def test_pjoin_exact_on_bursty_streams(
    seed, spacing_a, spacing_b, memory_threshold, purge_threshold
):
    smooth = generate_workload(
        n_tuples_per_stream=250,
        punct_spacing_a=spacing_a,
        punct_spacing_b=spacing_b,
        seed=seed,
    )
    workload = make_bursty(smooth, burst_ms=120.0, silence_ms=350.0, compress=0.5)

    def make(plan):
        return PJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
            config=PJoinConfig(
                purge_threshold=purge_threshold,
                memory_threshold=memory_threshold,
            ),
        )

    _join, got = run(make, workload)
    expected = reference_join_multiset(
        workload.schedule_a, workload.schedule_b,
        workload.schemas[0], workload.schemas[1],
    )
    assert got == expected
