"""Quarantine equivalence: a corrupted stream joins like its clean twin.

The property behind the ``quarantine`` fault policy: because the
contract check fires *before* a tuple is probed or inserted, routing
every violating tuple to the dead-letter store must leave exactly the
clean workload's join result — for all three operators, any workload,
and any number of injected violations.  The dead-letter store must hold
precisely the injected tuples, nothing more.

For the trackable operators (XJoin, SHJ — which never purge state), the
``repair`` policy has its own exact property: retracting the broken
promise and admitting the tuple reproduces the *corrupted* stream's
reference join.  (PJoin purges eagerly, so a retraction there cannot
resurrect already-purged partners; repair on PJoin is best-effort and
not asserted exact.)
"""

from collections import Counter

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.shj import SymmetricHashJoin
from repro.operators.sink import Sink
from repro.operators.xjoin import XJoin
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.errors import WorkloadError
from repro.workloads.faults import inject_punctuation_violation
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset
from repro.workloads.spec import WorkloadSpec

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Violations need punctuations to violate, so spacings are never None.
corruptible_specs = st.builds(
    WorkloadSpec,
    n_tuples_per_stream=st.integers(50, 250),
    punct_spacing_a=st.integers(2, 30),
    punct_spacing_b=st.integers(2, 30),
    active_values=st.integers(1, 12),
    seed=st.integers(0, 100_000),
)

violation_counts = st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(
    lambda pair: sum(pair) > 0
)


def corrupt(workload, violations, seed):
    """Inject the requested violations; assume() away workloads whose
    target side happens to contain no constant punctuation to violate."""
    schedules = [list(workload.schedule_a), list(workload.schedule_b)]
    for side, count in enumerate(violations):
        for i in range(count):
            try:
                schedules[side], _value, _pos = inject_punctuation_violation(
                    schedules[side], workload.schemas[side],
                    seed=seed + 50 * side + i,
                )
            except WorkloadError:
                assume(False)
    return schedules


def run_schedules(make_join, schedules):
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    join = make_join(plan)
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(schedules[0], join, port=0)
    plan.add_source(schedules[1], join, port=1)
    plan.run()
    return join, Counter(dict(sink.result_multiset()))


def reference(workload, schedules):
    return reference_join_multiset(
        schedules[0], schedules[1], workload.schemas[0], workload.schemas[1]
    )


def pjoin_builder(workload, policy):
    def make(plan):
        return PJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
            config=PJoinConfig(fault_policy=policy),
        )

    return make


def xjoin_builder(workload, policy):
    def make(plan):
        return XJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
            fault_policy=policy,
        )

    return make


def shj_builder(workload, policy):
    def make(plan):
        return SymmetricHashJoin(
            plan.engine, plan.cost_model,
            workload.schemas[0], workload.schemas[1], "key", "key",
            fault_policy=policy,
        )

    return make


BUILDERS = {
    "pjoin": pjoin_builder,
    "xjoin": xjoin_builder,
    "shj": shj_builder,
}


@SETTINGS
@given(
    spec=corruptible_specs,
    violations=violation_counts,
    fault_seed=st.integers(0, 10_000),
)
def test_quarantine_equals_clean_join_on_every_operator(
    spec, violations, fault_seed
):
    workload = generate_workload(spec)
    corrupted = corrupt(workload, violations, fault_seed)
    clean = reference(
        workload, [workload.schedule_a, workload.schedule_b]
    )
    for name, builder in BUILDERS.items():
        join, got = run_schedules(
            builder(workload, "quarantine"), corrupted
        )
        assert got == clean, f"{name}: quarantine drifted from clean join"
        assert join.validator.violations == sum(violations), name
        assert len(join.dead_letters) == sum(violations), name


@SETTINGS
@given(
    spec=corruptible_specs,
    violations=violation_counts,
    fault_seed=st.integers(0, 10_000),
)
def test_repair_equals_corrupted_join_on_state_keeping_operators(
    spec, violations, fault_seed
):
    workload = generate_workload(spec)
    corrupted = corrupt(workload, violations, fault_seed)
    expected = reference(workload, corrupted)
    for name in ("xjoin", "shj"):
        join, got = run_schedules(
            BUILDERS[name](workload, "repair"), corrupted
        )
        assert got == expected, f"{name}: repair drifted from corrupted join"
        assert join.validator.punctuations_retracted >= 1, name
        assert join.dead_letters is None, name


@SETTINGS
@given(spec=corruptible_specs, fault_seed=st.integers(0, 10_000))
def test_quarantine_on_clean_stream_is_invisible(spec, fault_seed):
    """No violations ⇒ quarantine behaves exactly like strict."""
    workload = generate_workload(spec)
    schedules = [list(workload.schedule_a), list(workload.schedule_b)]
    join, got = run_schedules(
        pjoin_builder(workload, "quarantine"), schedules
    )
    assert got == reference(workload, schedules)
    assert len(join.dead_letters) == 0
