"""Property-based tests of individual components against brute force.

Each test pits an optimised structure (the punctuation store's indexed
``setMatch``, the union's promise-merging, the group-by's punctuated
aggregation, the event engine's ordering) against an obviously-correct
oracle over random inputs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.operators.groupby import GroupBy, sum_agg
from repro.operators.sink import Sink
from repro.operators.union import Union
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.item import END_OF_STREAM
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "v", name="S")

values = st.integers(0, 20)
pattern_specs = st.one_of(
    values,
    st.tuples(values, values).map(lambda p: (min(p), max(p))),
    st.sets(values, min_size=1, max_size=4),
)


@settings(max_examples=60, deadline=None)
@given(
    specs=st.lists(pattern_specs, min_size=0, max_size=12),
    removals=st.lists(st.integers(0, 11), max_size=6),
    probe=values,
)
def test_store_covers_value_matches_brute_force(specs, removals, probe):
    store = PunctuationStore(SCHEMA, "key")
    punctuations = [Punctuation.on_field(SCHEMA, "key", spec) for spec in specs]
    ids = [store.add(p) for p in punctuations]
    alive = dict(zip(ids, punctuations))
    for index in removals:
        if index < len(ids):
            store.remove(ids[index])
            alive.pop(ids[index], None)
    expected = any(
        p.patterns[0].matches(probe) for p in alive.values()
    )
    assert store.covers_value(probe) == expected
    found = store.first_covering(probe)
    if expected:
        pid, punct = found
        # It is the earliest-arrived live cover.
        earlier = [
            i for i, p in alive.items()
            if i < pid and p.patterns[0].matches(probe)
        ]
        assert not earlier
    else:
        assert found is None


@settings(max_examples=40, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 2), values), min_size=1, max_size=60
    ),
    n_inputs=st.integers(2, 3),
)
def test_union_never_emits_a_violated_promise(events, n_inputs):
    """Whatever the interleaving, any punctuation the union emits must
    never be followed by a matching tuple on the merged output."""
    engine = SimulationEngine()
    cost_model = CostModel().scaled(0.001)
    union = Union(engine, cost_model, SCHEMA, n_inputs=n_inputs)
    sink = Sink(engine, cost_model, keep_items=True)
    union.connect(sink)
    # Build per-input valid streams from the random events: input i
    # punctuates value v only after it will never send v again.
    per_input_tuples = {i: [] for i in range(n_inputs)}
    for which, value in events:
        if which < n_inputs:
            per_input_tuples[which].append(value)
    t = 0.0
    for which, value in events:
        if which >= n_inputs:
            continue
        t += 1.0
        union.push(Tuple(SCHEMA, (value, 0), ts=t), which)
        per_input_tuples[which].pop(0)
        # After its last occurrence on this input, punctuate it there.
        if value not in per_input_tuples[which]:
            union.push(Punctuation.on_field(SCHEMA, "key", value, ts=t), which)
    engine.run()
    # Soundness check on the merged output.
    items = [(ts, "t", tup) for ts, tup in
             zip(sink.tuple_arrival_times, sink.results)]
    items += [(ts, "p", p) for ts, p in
              zip(sink.punctuation_arrival_times, sink.punctuations)]
    items.sort(key=lambda x: x[0])
    promised = []
    for _ts, kind, item in items:
        if kind == "p":
            promised.append(item)
        else:
            for punct in promised:
                assert not punct.matches(item)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_keys=st.integers(1, 8),
    n_tuples=st.integers(1, 60),
)
def test_groupby_totals_equal_oracle(seed, n_keys, n_tuples):
    rng = random.Random(seed)
    engine = SimulationEngine()
    cost_model = CostModel().scaled(0.001)
    groupby = GroupBy(engine, cost_model, SCHEMA, "key", [sum_agg("v")])
    sink = Sink(engine, cost_model, keep_items=True)
    groupby.connect(sink)
    expected = {}
    open_keys = list(range(n_keys))
    for _ in range(n_tuples):
        if not open_keys:
            break
        key = rng.choice(open_keys)
        v = rng.randrange(100)
        expected[key] = expected.get(key, 0) + v
        groupby.push(Tuple(SCHEMA, (key, v)))
        if rng.random() < 0.2:
            groupby.push(Punctuation.on_field(SCHEMA, "key", key))
            open_keys.remove(key)
    groupby.push(END_OF_STREAM)
    engine.run()
    got = {r["key"]: r["sum_v"] for r in sink.results}
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
def test_engine_executes_in_time_order(delays):
    engine = SimulationEngine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
