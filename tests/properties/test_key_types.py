"""Joins over non-integer key types.

The stable hash must spread string (and mixed) keys deterministically,
and every join must stay exact — also in the degenerate one-partition
configuration where every key shares a bucket.
"""

import random
from collections import Counter

import pytest

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.operators.sink import Sink
from repro.operators.xjoin import XJoin
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA_A = Schema.of("key", "a", name="A")
SCHEMA_B = Schema.of("key", "b", name="B")


def make_string_key_workload(seed=3, n_keys=12, per_key=6):
    """Two valid punctuated streams over string keys."""
    rng = random.Random(seed)
    keys = [f"user-{i:03d}" for i in range(n_keys)]
    schedules = [[], []]
    t = 0.0
    for key in keys:
        events = []
        for side in (0, 1):
            for i in range(per_key):
                events.append((rng.uniform(0, 30), side, i))
        events.sort()
        for offset, side, i in events:
            when = t + offset
            schema = (SCHEMA_A, SCHEMA_B)[side]
            schedules[side].append(
                (when, Tuple(schema, (key, i), ts=when))
            )
        close = t + 31.0
        for side, schema in enumerate((SCHEMA_A, SCHEMA_B)):
            schedules[side].append(
                (close, Punctuation.on_field(schema, "key", key, ts=close))
            )
        t += rng.uniform(5.0, 15.0)
    for schedule in schedules:
        schedule.sort(key=lambda pair: pair[0])
    return schedules, keys, per_key


def run(make_join, schedules):
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    join = make_join(plan)
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(schedules[0], join, port=0)
    plan.add_source(schedules[1], join, port=1)
    plan.run()
    return join, sink


def oracle(schedules):
    tuples_b = [i for _t, i in schedules[1] if isinstance(i, Tuple)]
    by_key = {}
    for tup in tuples_b:
        by_key.setdefault(tup["key"], []).append(tup)
    result = Counter()
    for _t, item in schedules[0]:
        if isinstance(item, Tuple):
            for tup in by_key.get(item["key"], []):
                result[item.values + tup.values] += 1
    return result


@pytest.mark.parametrize("n_partitions", [1, 3, 32])
def test_pjoin_exact_on_string_keys(n_partitions):
    schedules, keys, per_key = make_string_key_workload()

    def make(plan):
        return PJoin(
            plan.engine, plan.cost_model, SCHEMA_A, SCHEMA_B, "key", "key",
            config=PJoinConfig(purge_threshold=1, n_partitions=n_partitions),
        )

    join, sink = run(make, schedules)
    assert Counter(dict(sink.result_multiset())) == oracle(schedules)
    assert sink.tuple_count == len(keys) * per_key * per_key
    assert join.tuples_purged > 0  # punctuations worked on string keys


def test_xjoin_exact_on_string_keys_with_spill():
    schedules, _keys, _per_key = make_string_key_workload(n_keys=16, per_key=8)

    def make(plan):
        return XJoin(
            plan.engine, plan.cost_model, SCHEMA_A, SCHEMA_B, "key", "key",
            memory_threshold=40, n_partitions=4,
        )

    join, sink = run(make, schedules)
    assert join.spills > 0
    assert Counter(dict(sink.result_multiset())) == oracle(schedules)


def test_string_key_placement_is_process_stable():
    """The same key must land in the same bucket in any process: the
    placement derives from CRC-32, not the salted builtin hash."""
    import zlib

    from repro.storage.hash_table import stable_hash

    assert stable_hash("user-001") == zlib.crc32(repr("user-001").encode())
