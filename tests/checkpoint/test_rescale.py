"""Live rescaling: quiesce, migrate, resume — output stays exact.

A mid-run ``K1 -> K2`` rescale splits/merges checkpointed partitions
across the new shard set at a punctuation-cover boundary.  Whatever
the direction (scale-up, scale-down, same-size reshuffle) and whatever
the memory regime (pure in-memory or spilled disk tiers), the full run
must reproduce the unsharded result multiset; under eager purge with
propagation the merged punctuation multiset is exact too.
"""

from collections import Counter

import pytest

from repro.checkpoint.rescale import RescalePlan, run_sharded_rescale
from repro.core.config import PJoinConfig
from repro.errors import RecoveryError
from repro.experiments.harness import pjoin_factory, run_join_experiment
from repro.workloads.generator import generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        n_tuples_per_stream=240,
        punct_spacing_a=12,
        punct_spacing_b=12,
        seed=11,
    )


def unsharded(workload, config):
    run = run_join_experiment(
        pjoin_factory(config), workload, label="base", keep_items=True
    )
    puncts = Counter(p.patterns[0] for p in run.sink.punctuations)
    return run.sink.result_multiset(), puncts


class TestRescalePlanParse:
    def test_parses_cli_form(self):
        plan = RescalePlan.parse("2:4@500")
        assert (plan.n_before, plan.n_after, plan.at_ts) == (2, 4, 500.0)

    @pytest.mark.parametrize("text", ["2:4", "two:4@5", "2@5", "2:4@x", ""])
    def test_malformed_specs_raise(self, text):
        with pytest.raises(RecoveryError, match="rescale"):
            RescalePlan.parse(text)

    @pytest.mark.parametrize("text", ["0:2@5", "2:0@5", "2:2@-1"])
    def test_invalid_values_raise(self, text):
        with pytest.raises(RecoveryError):
            RescalePlan.parse(text)


class TestRescaleEquivalence:
    @pytest.mark.parametrize("k1,k2", [(2, 3), (4, 2), (2, 2), (1, 3)])
    def test_result_multiset_matches_unsharded(self, workload, k1, k2):
        config = PJoinConfig(purge_threshold=1, propagation_mode="push_count")
        base_results, base_puncts = unsharded(workload, config)
        outcome = run_sharded_rescale(
            workload,
            RescalePlan(k1, k2, workload.end_time / 2),
            config=config,
            checkpoint_every=2,
        )
        assert Counter(outcome.result_multiset()) == Counter(base_results)
        assert Counter(outcome.punctuation_multiset()) == base_puncts
        assert outcome.counters["rescale.shards_before"] == k1
        assert outcome.counters["rescale.shards_after"] == k2
        assert outcome.counters["rescale.migrated_tuples"] >= 0

    @pytest.mark.parametrize("k1,k2", [(2, 3), (3, 2)])
    def test_spilled_state_migrates_exactly(self, workload, k1, k2):
        # A tight memory threshold forces disk-resident entries at the
        # cut; migration must carry their departure stamps or the
        # dedupe rules double-produce (or drop) disk pairs.
        config = PJoinConfig(purge_threshold=3, memory_threshold=30)
        base_results, _ = unsharded(workload, config)
        outcome = run_sharded_rescale(
            workload,
            RescalePlan(k1, k2, workload.end_time / 2),
            config=config,
            checkpoint_every=2,
        )
        assert Counter(outcome.result_multiset()) == Counter(base_results)

    def test_early_cut_migrates_little_late_cut_much(self, workload):
        config = PJoinConfig(purge_threshold=1)
        early = run_sharded_rescale(
            workload, RescalePlan(2, 3, 0.0), config=config,
        )
        late = run_sharded_rescale(
            workload,
            RescalePlan(2, 3, workload.end_time * 0.9),
            config=config,
        )
        base_results, _ = unsharded(workload, config)
        assert Counter(early.result_multiset()) == Counter(base_results)
        assert Counter(late.result_multiset()) == Counter(base_results)
        assert early.counters["rescale.cut_ts"] < late.counters["rescale.cut_ts"]

    def test_no_boundary_after_cut_time_raises(self, workload):
        with pytest.raises(RecoveryError, match="boundary"):
            run_sharded_rescale(
                workload,
                RescalePlan(2, 3, workload.end_time * 10),
                config=PJoinConfig(purge_threshold=1),
            )
