"""Crash recovery reproduces the fault-free run, from any crash point.

The central property: a seeded crash before the Nth delivery — for
*any* N — followed by restore-from-latest-checkpoint and replay of the
unacknowledged suffix yields exactly the reference join multiset.  The
in-flight log unit tests pin the bounded-replay bookkeeping, and the
multiprocess supervisor smoke drives the real fork/respawn path.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checkpoint.recovery import (
    CrashSpec,
    run_checkpointed_shard,
    run_shard_with_recovery,
    run_sharded_resilient,
)
from repro.core.config import PJoinConfig
from repro.errors import OperatorError, RecoveryError
from repro.experiments.harness import pjoin_factory, run_join_experiment
from repro.shard.backend import fork_available
from repro.shard.router import InFlightLog
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CONFIGS = {
    "eager": PJoinConfig(purge_threshold=1),
    "spill": PJoinConfig(purge_threshold=3, memory_threshold=40),
}


def small_workload(seed=3):
    return generate_workload(
        n_tuples_per_stream=120,
        punct_spacing_a=10,
        punct_spacing_b=10,
        seed=seed,
    )


def result_multiset(outcome):
    return Counter(values for values, _ts in outcome["results"])


@pytest.fixture(scope="module")
def workload():
    return small_workload()


@pytest.fixture(scope="module")
def reference(workload):
    return reference_join_multiset(
        workload.schedule_a, workload.schedule_b,
        workload.schemas[0], workload.schemas[1],
    )


class TestCheckpointedRun:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_segmented_run_matches_reference(
        self, workload, reference, config_name
    ):
        outcome = run_checkpointed_shard(
            0, workload.schedule_a, workload.schedule_b, workload,
            config=CONFIGS[config_name], checkpoint_every=2,
        )
        assert result_multiset(outcome) == reference
        assert outcome["counters"]["checkpoint.checkpoints_saved"] > 0
        assert outcome["counters"]["checkpoint.checkpoint_bytes"] > 0

    def test_checkpoint_io_is_charged(self, workload):
        outcome = run_checkpointed_shard(
            0, workload.schedule_a, workload.schedule_b, workload,
            config=CONFIGS["eager"], checkpoint_every=2,
        )
        assert outcome["counters"]["checkpoint.save_time_ms"] > 0


class TestCrashAtAnyIndex:
    @SETTINGS
    @given(
        crash_after=st.integers(1, 250),
        config_name=st.sampled_from(sorted(CONFIGS)),
    )
    def test_recovery_reproduces_reference(self, crash_after, config_name):
        workload = small_workload()
        reference = reference_join_multiset(
            workload.schedule_a, workload.schedule_b,
            workload.schemas[0], workload.schemas[1],
        )
        outcome = run_shard_with_recovery(
            0, workload.schedule_a, workload.schedule_b, workload,
            config=CONFIGS[config_name], checkpoint_every=2,
            crash_after=crash_after,
        )
        assert result_multiset(outcome) == reference
        total = len(workload.schedule_a) + len(workload.schedule_b)
        if crash_after <= total:
            assert outcome["counters"]["recovery.crashes_detected"] == 1
            assert outcome["counters"]["recovery.workers_respawned"] == 1
            assert outcome["counters"]["recovery.events_replayed"] > 0

    def test_crash_before_first_checkpoint_cold_starts(
        self, workload, reference
    ):
        outcome = run_shard_with_recovery(
            0, workload.schedule_a, workload.schedule_b, workload,
            config=CONFIGS["eager"], checkpoint_every=2, crash_after=1,
        )
        assert result_multiset(outcome) == reference
        total = len(workload.schedule_a) + len(workload.schedule_b)
        assert outcome["counters"]["recovery.events_replayed"] == total

    def test_crash_spec_validates(self):
        with pytest.raises(RecoveryError, match="after_items"):
            CrashSpec(0, 0)


class TestInFlightLog:
    def test_ack_trims_prefix_and_suffix_shrinks(self):
        log = InFlightLog([1, 2, 3, 4], [5, 6])
        assert log.retained == 6
        log.ack(2, 1)
        assert log.base == (2, 1)
        assert log.suffix() == ([3, 4], [6])
        assert log.retained == 3
        assert log.items_retired == 3

    def test_ack_is_cumulative_and_idempotent(self):
        log = InFlightLog([1, 2, 3], [4, 5, 6])
        log.ack(1, 1)
        log.ack(1, 1)  # same positions again: nothing more trimmed
        assert log.items_retired == 2
        log.ack(3, 2)
        assert log.suffix() == ([], [6])

    def test_ack_backwards_raises(self):
        log = InFlightLog([1, 2], [3])
        log.ack(2, 1)
        with pytest.raises(OperatorError, match="backwards"):
            log.ack(1, 1)

    def test_ack_beyond_end_raises(self):
        log = InFlightLog([1, 2], [3])
        with pytest.raises(OperatorError, match="beyond"):
            log.ack(3, 0)

    def test_counters(self):
        log = InFlightLog([1], [2, 3])
        log.ack(1, 2)
        assert log.counters() == {
            "acks": 1, "items_retired": 3, "items_retained": 0,
        }


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestSupervisedBackend:
    def test_worker_crash_recovers_to_unsharded_multiset(self, workload):
        config = PJoinConfig(purge_threshold=1, propagation_mode="push_count")
        base = run_join_experiment(
            pjoin_factory(config), workload, label="base", keep_items=True
        )
        outcome = run_sharded_resilient(
            workload, 2, config=config, keep_items=True,
            checkpoint_every=2, crash=CrashSpec(0, 40),
        )
        assert outcome.result_multiset() == base.sink.result_multiset()
        assert outcome.counters["recovery.crashes_detected"] == 1
        assert outcome.counters["recovery.workers_respawned"] == 1
        assert outcome.counters["recovery.checkpoints_taken"] > 0
        assert outcome.counters["recovery.events_replayed"] > 0

    def test_crash_shard_out_of_range_raises(self, workload):
        with pytest.raises(RecoveryError, match="out of range"):
            run_sharded_resilient(workload, 2, crash=CrashSpec(5, 10))
