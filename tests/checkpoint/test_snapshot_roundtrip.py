"""Property tests: snapshot -> restore of join state is *exact*.

Exactness is the whole recovery argument: the dedupe machinery
(``ats``/``dts`` residency intervals, partition probe histories,
punctuation pids, index counts) must come back identical or a resumed
run silently duplicates or drops result pairs.  The round-trip
invariant checked here — restoring a snapshot and re-snapshotting
yields an equal dict — holds with and without governor activity
(cold-tier demoted buckets, disk-resident spilled entries).
"""

from hypothesis import given, settings, strategies as st

from repro.checkpoint.snapshot import (
    restore_side,
    restore_store_into,
    snapshot_side,
    snapshot_store,
)
from repro.core.state import JoinStateSide
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore
from repro.storage.partition import INFINITY
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "payload", name="S")

SETTINGS = settings(max_examples=25, deadline=None)


def make_tuple(key, ts):
    return Tuple(SCHEMA, (key, key * 7), ts=ts)


# ---------------------------------------------------------------------------
# PunctuationStore
# ---------------------------------------------------------------------------


def build_store(keys, remove_positions, with_wildcard):
    store = PunctuationStore(SCHEMA, "key")
    ts = 0.0
    for key in keys:
        store.add(Punctuation.on_field(SCHEMA, "key", key, ts=ts))
        ts += 1.0
    if with_wildcard:
        store.add(Punctuation.on_field(SCHEMA, "key", "*", ts=ts))
    if store.next_id:
        for position in remove_positions:
            store.remove(position % store.next_id)
    return store


@SETTINGS
@given(
    keys=st.lists(st.integers(0, 60), unique=True, max_size=25),
    remove_positions=st.lists(st.integers(0, 60), max_size=10),
    with_wildcard=st.booleans(),
)
def test_store_roundtrip_is_exact(keys, remove_positions, with_wildcard):
    store = build_store(keys, remove_positions, with_wildcard)
    snap = snapshot_store(store)

    fresh = PunctuationStore(SCHEMA, "key")
    restore_store_into(fresh, snap)

    assert snapshot_store(fresh) == snap
    assert len(fresh) == len(store)
    assert fresh.total_added == store.total_added
    assert fresh.next_id == store.next_id
    # Derived lookup structures answer identically on every probe value.
    for value in range(-1, 62):
        assert fresh.covers_value(value) == store.covers_value(value)
        assert fresh.covering_pids(value) == store.covering_pids(value)


# ---------------------------------------------------------------------------
# JoinStateSide (table + cold tier + disk + store + index)
# ---------------------------------------------------------------------------


def build_side(keys, punct_keys, demote_parts, spill_parts, n_partitions):
    side = JoinStateSide(SCHEMA, "key", n_partitions, side_name="A")
    ts = 0.0
    for key in keys:
        side.insert(make_tuple(key, ts), key, ts)
        ts += 1.0
    # Governor-style cold-tier demotion: entries leave the probe-hot
    # dict but stay memory-resident with dts = inf and their order.
    for index in demote_parts:
        side.table.demote_partition(side.table.partitions[index % n_partitions])
    # Spills stamp departure timestamps and sweep the cold tier too.
    for index in spill_parts:
        side.table.spill_partition(side.table.partitions[index % n_partitions], ts)
        ts += 1.0
    for part in side.table.partitions:
        part.record_probe(ts)
    for key in punct_keys:
        side.store.add(Punctuation.on_field(SCHEMA, "key", key, ts=ts))
        ts += 1.0
    all_entries = [
        entry
        for part in side.table.partitions
        for entries in part.memory.values()
        for entry in entries
    ]
    side.index.build(all_entries)
    return side


@SETTINGS
@given(
    keys=st.lists(st.integers(0, 40), min_size=1, max_size=30),
    punct_keys=st.lists(st.integers(0, 40), unique=True, max_size=8),
    demote_parts=st.lists(st.integers(0, 7), max_size=4),
    spill_parts=st.lists(st.integers(0, 7), max_size=4),
    n_partitions=st.sampled_from([1, 2, 4]),
)
def test_side_roundtrip_is_exact(
    keys, punct_keys, demote_parts, spill_parts, n_partitions
):
    side = build_side(keys, punct_keys, demote_parts, spill_parts, n_partitions)
    snap = snapshot_side(side)

    restored = restore_side(SCHEMA, "key", snap)

    assert snapshot_side(restored) == snap
    assert restored.table.memory_count == side.table.memory_count
    assert restored.table.total_inserted == side.table.total_inserted
    for got, want in zip(restored.table.partitions, side.table.partitions):
        assert list(got.memory) == list(want.memory)  # bucket order
        assert len(got.cold) == len(want.cold)
        assert len(got.disk) == len(want.disk)
        assert got.probe_history == want.probe_history
        # Cold-tier entries stay undeparted; disk entries carry stamps.
        assert all(entry.dts == INFINITY for entry in got.cold)
        assert all(entry.dts < INFINITY for entry in got.disk)


def test_side_roundtrip_preserves_purge_buffer():
    side = build_side([1, 2, 3], [1], [], [], 2)
    # Park an entry in the purge buffer (the deferred-purge holding pen).
    part = side.table.partitions[0]
    for entries in list(part.memory.values()):
        side.purge_buffer.extend(entries)
    snap = snapshot_side(side)
    restored = restore_side(SCHEMA, "key", snap)
    assert snapshot_side(restored) == snap
    assert len(restored.purge_buffer) == len(side.purge_buffer)
