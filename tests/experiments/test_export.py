"""Unit tests for JSON export of experiment results."""

import json

import pytest

from repro.experiments.export import (
    FORMAT_VERSION,
    figure_to_dict,
    load_figure_json,
    save_figure_json,
    series_from_dict,
    series_to_dict,
)
from repro.experiments.figures import figure6
from repro.metrics.series import TimeSeries


@pytest.fixture(scope="module")
def figure():
    return figure6(scale=0.06)


class TestSeriesRoundTrip:
    def test_round_trip(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(2.0, 3.0)
        restored = series_from_dict(series_to_dict(series))
        assert restored.name == "s"
        assert list(restored.points()) == list(series.points())


class TestFigureExport:
    def test_dict_structure(self, figure):
        data = figure_to_dict(figure)
        assert data["format_version"] == FORMAT_VERSION
        assert data["figure_id"] == "Figure 6"
        assert len(data["runs"]) == 3
        run = data["runs"][0]
        assert "state_total" in run["series"]
        assert run["summary"]["results"] > 0
        assert all("passed" in c for c in data["checks"])

    def test_save_and_load(self, figure, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_json(figure, path)
        data = load_figure_json(path)
        assert data["figure_id"] == "Figure 6"
        series = series_from_dict(data["runs"][0]["series"]["state_total"])
        assert len(series) > 0

    def test_version_check(self, figure, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_json(figure, path)
        data = json.loads(path.read_text())
        data["format_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="format version"):
            load_figure_json(path)

    def test_json_is_plain_serialisable(self, figure):
        json.dumps(figure_to_dict(figure))
