"""Unit tests for the run-comparison tool."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
import compare_runs  # noqa: E402

from repro.experiments.export import save_figure_json  # noqa: E402
from repro.experiments.figures import figure6  # noqa: E402


@pytest.fixture(scope="module")
def figure():
    return figure6(scale=0.06)


def test_identical_dirs_report_no_regression(figure, tmp_path_factory, capsys):
    old = tmp_path_factory.mktemp("old")
    new = tmp_path_factory.mktemp("new")
    save_figure_json(figure, old / "f.json")
    save_figure_json(figure, new / "f.json")
    assert compare_runs.main([str(old), str(new)]) == 0
    assert "no metric moved" in capsys.readouterr().out


def test_changed_metric_detected(figure, tmp_path_factory, capsys):
    import json

    old = tmp_path_factory.mktemp("old2")
    new = tmp_path_factory.mktemp("new2")
    save_figure_json(figure, old / "f.json")
    save_figure_json(figure, new / "f.json")
    data = json.loads((new / "f.json").read_text())
    data["runs"][0]["summary"]["mean_state"] *= 2.0
    (new / "f.json").write_text(json.dumps(data))
    assert compare_runs.main([str(old), str(new)]) == 1
    out = capsys.readouterr().out
    assert "mean_state" in out
    assert "+100.0%" in out


def test_relative_change_edges():
    assert compare_runs.relative_change(0.0, 0.0) == 0.0
    assert compare_runs.relative_change(0.0, 1.0) == float("inf")
    assert compare_runs.relative_change(10.0, 5.0) == pytest.approx(-0.5)


def test_missing_figures_reported(figure, tmp_path_factory, capsys):
    old = tmp_path_factory.mktemp("old3")
    new = tmp_path_factory.mktemp("new3")
    save_figure_json(figure, old / "f.json")
    compare_runs.main([str(old), str(new)])
    assert "only in" in capsys.readouterr().out


def test_nary_side_counters_fold_into_the_counter_diff(tmp_path, capsys):
    """Per-side n-ary counters travel through manifests into --counters."""
    import json

    from repro.core.config import PJoinConfig
    from repro.experiments.harness import run_nary_experiment
    from repro.planner import PlannerSpec
    from repro.workloads.nary import generate_nary_workload

    workload = generate_nary_workload(
        n_streams=3, n_tuples_per_stream=200,
        punct_spacings=(10.0, 20.0, 40.0), seed=4,
    )
    runs = [
        run_nary_experiment(
            workload, config=PJoinConfig(purge_threshold=4),
            planner=PlannerSpec(mode="static", initial_order=order),
        )
        for order in [(0, 1, 2), (2, 1, 0)]
    ]
    registry = runs[0].manifest["counters"]["nary-pjoin"]
    assert "side.input0.probe_count" in registry
    assert "side.input0.punct_cadence_ms" in registry
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(runs[0].manifest))
    new_path.write_text(json.dumps(runs[1].manifest))
    # Different probe orders shift which sides get probed, so the
    # per-side probe counters must move in the diff.
    assert compare_runs.main([str(old_path), str(new_path)]) == 1
    out = capsys.readouterr().out
    assert "side.input" in out


def test_adaptive_manifest_carries_planner_counters(capsys):
    from repro.core.config import PJoinConfig
    from repro.experiments.harness import run_nary_experiment
    from repro.planner import PlannerSpec, get_preset
    from repro.workloads.nary import generate_nary_workload

    workload = generate_nary_workload(get_preset("nary_drift", scale=0.05))
    run = run_nary_experiment(
        workload, config=PJoinConfig(purge_threshold=8),
        planner=PlannerSpec(mode="adaptive", reopt_interval=2),
    )
    registry = run.manifest["counters"]["nary-pjoin"]
    assert registry["planner.reopt.count"] >= 1
    assert "planner.switches" in registry
    assert "planner.cumulative_cost_delta" in registry
