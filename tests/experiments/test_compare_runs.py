"""Unit tests for the run-comparison tool."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
import compare_runs  # noqa: E402

from repro.experiments.export import save_figure_json  # noqa: E402
from repro.experiments.figures import figure6  # noqa: E402


@pytest.fixture(scope="module")
def figure():
    return figure6(scale=0.06)


def test_identical_dirs_report_no_regression(figure, tmp_path_factory, capsys):
    old = tmp_path_factory.mktemp("old")
    new = tmp_path_factory.mktemp("new")
    save_figure_json(figure, old / "f.json")
    save_figure_json(figure, new / "f.json")
    assert compare_runs.main([str(old), str(new)]) == 0
    assert "no metric moved" in capsys.readouterr().out


def test_changed_metric_detected(figure, tmp_path_factory, capsys):
    import json

    old = tmp_path_factory.mktemp("old2")
    new = tmp_path_factory.mktemp("new2")
    save_figure_json(figure, old / "f.json")
    save_figure_json(figure, new / "f.json")
    data = json.loads((new / "f.json").read_text())
    data["runs"][0]["summary"]["mean_state"] *= 2.0
    (new / "f.json").write_text(json.dumps(data))
    assert compare_runs.main([str(old), str(new)]) == 1
    out = capsys.readouterr().out
    assert "mean_state" in out
    assert "+100.0%" in out


def test_relative_change_edges():
    assert compare_runs.relative_change(0.0, 0.0) == 0.0
    assert compare_runs.relative_change(0.0, 1.0) == float("inf")
    assert compare_runs.relative_change(10.0, 5.0) == pytest.approx(-0.5)


def test_missing_figures_reported(figure, tmp_path_factory, capsys):
    old = tmp_path_factory.mktemp("old3")
    new = tmp_path_factory.mktemp("new3")
    save_figure_json(figure, old / "f.json")
    compare_runs.main([str(old), str(new)])
    assert "only in" in capsys.readouterr().out
