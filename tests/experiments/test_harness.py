"""Unit tests for the experiment harness."""

import pytest

from repro.core.config import PJoinConfig
from repro.experiments.harness import (
    pjoin_factory,
    run_join_experiment,
    shj_factory,
    xjoin_factory,
)
from repro.workloads.generator import generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        n_tuples_per_stream=600, punct_spacing_a=10, punct_spacing_b=10, seed=4
    )


def test_collects_all_series(workload):
    run = run_join_experiment(pjoin_factory(), workload, label="p")
    assert set(run.series) == {
        "state_total",
        "state_a",
        "state_b",
        "output",
        "punct_output",
    }
    assert len(run.state_series) > 0


def test_series_trimmed_at_eos(workload):
    run = run_join_experiment(pjoin_factory(), workload)
    assert run.state_series.times[-1] <= run.duration_ms


def test_summary_fields(workload):
    run = run_join_experiment(pjoin_factory(), workload, label="mine")
    summary = run.summary()
    assert summary["label"] == "mine"
    assert summary["results"] == run.results
    assert summary["duration_ms"] == run.duration_ms


def test_factories_build_expected_operators(workload):
    from repro.core.pjoin import PJoin
    from repro.operators.shj import SymmetricHashJoin
    from repro.operators.xjoin import XJoin

    assert isinstance(
        run_join_experiment(pjoin_factory(PJoinConfig()), workload).join, PJoin
    )
    assert isinstance(run_join_experiment(xjoin_factory(), workload).join, XJoin)
    assert isinstance(
        run_join_experiment(shj_factory(), workload).join, SymmetricHashJoin
    )


def test_all_factories_agree_on_results(workload):
    results = {
        label: run_join_experiment(factory, workload).results
        for label, factory in [
            ("pjoin", pjoin_factory()),
            ("xjoin", xjoin_factory()),
            ("shj", shj_factory()),
        ]
    }
    assert len(set(results.values())) == 1


def test_output_rate_windows(workload):
    run = run_join_experiment(pjoin_factory(), workload)
    assert run.output_rate_first_half() > 0
    assert run.output_rate_second_half() > 0


def test_keep_items_retains_results(workload):
    run = run_join_experiment(pjoin_factory(), workload, keep_items=True)
    assert len(run.sink.results) == run.results
