"""Integration tests for the figure presets.

Fast smoke runs (small scale) check that every preset executes, labels
its runs and renders a report; the heavier shape tests — the paper's
qualitative claims — run a subset of figures at the scale at which the
claims are meaningful.  The full-scale suite lives in ``benchmarks/``.
"""

import pytest

from repro.experiments import figures
from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.figures import ALL_FIGURES, Check, FigureResult


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(ALL_FIGURES) == (
            {f"figure{i}" for i in range(5, 15)}
            | {"fig_memory_sweep", "fig_nary_adaptive", "fig_skew_sweep"}
        )

    def test_all_seven_ablations_registered(self):
        assert len(ALL_ABLATIONS) == 7


@pytest.mark.parametrize("name", sorted(ALL_FIGURES))
def test_figure_smoke(name):
    """Every preset runs end to end at tiny scale and renders."""
    result = ALL_FIGURES[name](scale=0.06)
    assert isinstance(result, FigureResult)
    assert result.runs
    assert result.checks
    report = result.render()
    assert result.figure_id in report
    assert "Shape checks" in report


class TestShapesAtModestScale:
    """The paper's claims that already hold at reduced scale."""

    def test_figure5_state_shape(self):
        result = figures.figure5(scale=0.25)
        assert result.all_passed, [c for c in result.checks if not c.passed]

    def test_figure6_state_ordering(self):
        result = figures.figure6(scale=0.25)
        assert result.all_passed, [c for c in result.checks if not c.passed]

    def test_figure8_purge_memory_shape(self):
        result = figures.figure8(scale=0.25)
        assert result.all_passed, [c for c in result.checks if not c.passed]

    def test_figure10_asymmetric_state_shape(self):
        result = figures.figure10(scale=0.25)
        assert result.all_passed, [c for c in result.checks if not c.passed]

    def test_figure14_propagation_shape(self):
        result = figures.figure14(scale=0.25)
        assert result.all_passed, [c for c in result.checks if not c.passed]


class TestFigureResultApi:
    def test_run_lookup_by_label(self):
        result = figures.figure5(scale=0.06)
        assert result.run("PJoin-1").label == "PJoin-1"
        with pytest.raises(KeyError):
            result.run("nope")

    def test_check_repr(self):
        assert repr(Check("claim", True)) == "[PASS] claim"
        assert repr(Check("claim", False)) == "[FAIL] claim"

    def test_summary_table_has_all_variants(self):
        result = figures.figure5(scale=0.06)
        table = result.summary_table()
        assert "PJoin-1" in table and "XJoin" in table
