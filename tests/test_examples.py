"""Every example script must run end to end and say what it promises.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in-process (same interpreter, real engine) with its
stdout captured.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_PHRASES = {
    "quickstart.py": ["PJoin results", "fraction of the state"],
    "auction_monitoring.py": ["with propagation", "top items"],
    "purge_strategy_tuning.py": ["Fastest finish", "PJoin-800"],
    "sensor_network.py": ["join results", "WindowedPJoin"],
    "nary_join.py": ["Three-way punctuated join", "exactly once"],
    "derived_punctuations.py": [
        "punctuations derived",
        "output globally epoch-ordered : True",
    ],
}


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_PHRASES), (
        "examples/ and EXPECTED_PHRASES disagree — add the new example here"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_PHRASES))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    for phrase in EXPECTED_PHRASES[script]:
        assert phrase in out, f"{script} output lacks {phrase!r}"
