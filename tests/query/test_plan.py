"""Unit tests for query-plan assembly."""

from repro.operators.select import Select
from repro.operators.sink import Sink
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("x")


def test_owns_engine_and_cost_model_by_default():
    plan = QueryPlan()
    assert isinstance(plan.engine, SimulationEngine)
    assert isinstance(plan.cost_model, CostModel)


def test_accepts_shared_engine():
    engine = SimulationEngine()
    plan = QueryPlan(engine=engine)
    assert plan.engine is engine


def test_runs_sources_through_operators():
    plan = QueryPlan(cost_model=CostModel().scaled(0.001))
    select = Select(plan.engine, plan.cost_model, lambda t: t["x"] > 1)
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    select.connect(sink)
    schedule = [(float(i), Tuple(SCHEMA, (i,), ts=float(i))) for i in range(4)]
    plan.add_source(schedule, select)
    plan.run()
    assert [t["x"] for t in sink.results] == [2, 3]
    assert sink.finished


def test_sources_get_default_names():
    plan = QueryPlan()
    sink = Sink(plan.engine, plan.cost_model)
    source = plan.add_source([], sink)
    assert source.name == "source0"


def test_run_until_limits_virtual_time():
    plan = QueryPlan(cost_model=CostModel().scaled(0.001))
    sink = Sink(plan.engine, plan.cost_model)
    schedule = [(100.0, Tuple(SCHEMA, (1,), ts=100.0))]
    plan.add_source(schedule, sink)
    plan.run(until=50.0)
    assert sink.tuple_count == 0
    assert plan.engine.now == 50.0
