"""FrequencySketch unit and property tests.

The load-bearing property (the skew layer's decisions inherit it): on
streams with at most ``top_k`` distinct keys the SpaceSaving counts are
*exact* — no monitor is ever evicted — and on arbitrary streams the
estimate never underestimates (SpaceSaving for monitored keys,
count-min for the rest).
"""

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.skew.sketch import FrequencySketch

KEYS = st.one_of(st.integers(0, 99), st.text(min_size=1, max_size=3))


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"top_k": 0}, {"width": 0}, {"depth": 0}, {"depth": 7},
    ])
    def test_bad_geometry_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FrequencySketch(**kwargs)


class TestExactness:
    @given(st.lists(st.sampled_from("abcdefgh"), max_size=200))
    def test_topk_exact_with_few_distinct_keys(self, stream):
        """<= top_k distinct keys -> every count exact, zero evictions."""
        sketch = FrequencySketch(top_k=8, width=64, depth=2)
        for key in stream:
            sketch.observe(key)
        truth = Counter(stream)
        assert sketch.is_exact()
        assert sketch.evictions == 0
        assert {v: c for v, c, _err in sketch.topk()} == dict(truth)
        for key, count in truth.items():
            assert sketch.estimate(key) == count

    @given(st.lists(KEYS, max_size=300))
    def test_estimate_never_underestimates(self, stream):
        sketch = FrequencySketch(top_k=4, width=32, depth=3)
        for key in stream:
            sketch.observe(key)
        truth = Counter(stream)
        assert sketch.total == len(stream)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count


class TestDeterminism:
    def test_same_stream_same_state(self):
        streams = [FrequencySketch(top_k=3, width=16, depth=2)
                   for _ in range(2)]
        for sketch in streams:
            for key in [1, 2, 2, 3, 3, 3, 4, 5, 1, 3]:
                sketch.observe(key)
        a, b = streams
        assert a.topk() == b.topk()
        assert a.counters() == b.counters()

    def test_topk_orders_hottest_first(self):
        sketch = FrequencySketch(top_k=8)
        for key, count in [("cold", 1), ("hot", 9), ("warm", 4)]:
            sketch.observe(key, count=count)
        assert [v for v, _c, _e in sketch.topk()] == ["hot", "warm", "cold"]

    def test_eviction_carries_floor_as_error(self):
        sketch = FrequencySketch(top_k=2, width=16, depth=2)
        sketch.observe("a", count=5)
        sketch.observe("b", count=2)
        sketch.observe("c")  # evicts "b" (the minimum), inherits its floor
        assert not sketch.is_exact()
        assert sketch.evictions == 1
        entries = {v: (c, e) for v, c, e in sketch.topk()}
        assert entries["c"] == (3, 2)  # floor 2 + the one arrival, error 2
        assert sketch.estimate("c") >= 1


class TestShare:
    def test_share_of_empty_sketch_is_zero(self):
        assert FrequencySketch().share("x") == 0.0

    def test_share_tracks_fraction(self):
        sketch = FrequencySketch()
        sketch.observe("hot", count=30)
        sketch.observe("cold", count=10)
        assert sketch.share("hot") == pytest.approx(0.75)
