"""AdaptiveTable unit tests: placement, split/coalesce, invariants."""

import pytest

from repro.errors import StorageError
from repro.skew.partitioner import AdaptiveTable
from repro.storage.hash_table import PartitionedHashTable
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "seq")


def tup(key, seq=0):
    return Tuple(SCHEMA, (key, seq), ts=0.0, validate=False)


def fill(table, keys):
    for seq, key in enumerate(keys):
        table.insert(tup(key, seq), key, ats=float(seq))


class TestPlacement:
    def test_depth_zero_matches_stock_table(self):
        """Unsplit, the adaptive table IS the stock table, placement-wise."""
        adaptive, stock = AdaptiveTable(4), PartitionedHashTable(4)
        for h in range(64):
            assert adaptive.partition_index_for(h) == \
                stock.partition_index_for(h)

    def test_split_keys_by_next_hash_bits(self):
        table = AdaptiveTable(4)
        table.set_depth(0, 1)
        # Base bucket 0 now has leaves 0..1; bucket 1 starts at offset 2.
        assert table.partition_index_for(0) == 0   # (0 // 4) % 2 == 0
        assert table.partition_index_for(4) == 1   # (4 // 4) % 2 == 1
        assert table.partition_index_for(1) == 2
        assert table.n_partitions == 4
        assert table.leaf_count == 5

    def test_flat_indices_stay_contiguous_after_restructure(self):
        table = AdaptiveTable(4)
        table.set_depth(2, 2)
        table.set_depth(0, 1)
        assert [p.index for p in table.partitions] == \
            list(range(table.leaf_count))


class TestSplitAndCoalesce:
    def test_split_moves_entries_and_preserves_lookup(self):
        table = AdaptiveTable(2)
        keys = [0, 2, 4, 6, 8]  # all land in base bucket 0 (hash == key)
        fill(table, keys)
        moved = table.set_depth(0, 2)
        assert moved == len(keys)
        assert table.memory_count == len(keys)
        assert table.splits == 1
        for key in keys:
            occupancy, matches = table.probe(key)
            assert [e.join_value for e in matches] == [key]
            assert occupancy < len(keys)  # the point of splitting

    def test_coalesce_restores_single_leaf(self):
        table = AdaptiveTable(2)
        fill(table, [0, 2, 4])
        table.set_depth(0, 2)
        table.set_depth(0, 0)
        assert table.coalesces == 1
        assert table.leaf_count == 2
        assert table.partitions[0].memory_count == 3

    def test_moved_entries_keep_ats_and_hash(self):
        table = AdaptiveTable(2)
        fill(table, [0, 2, 4])
        before = sorted(
            (e.join_value, e.ats, e.join_hash) for e in table.iter_all()
        )
        table.set_depth(0, 1)
        after = sorted(
            (e.join_value, e.ats, e.join_hash) for e in table.iter_all()
        )
        assert after == before

    def test_same_depth_is_a_noop(self):
        table = AdaptiveTable(2)
        fill(table, [0, 2])
        assert table.set_depth(0, 0) == 0
        assert table.splits == 0 and table.entries_moved == 0


class TestGuards:
    def test_unknown_base_bucket_rejected(self):
        with pytest.raises(StorageError):
            AdaptiveTable(2).set_depth(5, 1)

    def test_negative_depth_rejected(self):
        with pytest.raises(StorageError):
            AdaptiveTable(2).set_depth(0, -1)

    def test_cold_entries_block_restructure(self):
        table = AdaptiveTable(2)
        fill(table, [0, 2, 4])
        table.partitions[0].demote()  # governor-spilled bucket
        assert not table.can_restructure(0)
        with pytest.raises(StorageError):
            table.set_depth(0, 1)
