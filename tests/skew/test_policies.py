"""SkewAwarePolicy: spill cold buckets first, keep hot state warm."""

from repro.memory.governor import MemoryGovernor
from repro.memory.policies import POLICIES, SkewAwarePolicy
from repro.sim.costs import CostModel
from repro.skew.sketch import FrequencySketch
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import PartitionedHashTable
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "seq")


def make_governor(policy="skew-aware", n_partitions=4):
    governor = MemoryGovernor(
        1.0, policy=policy, disk=SimulatedDisk(CostModel())
    )
    table = PartitionedHashTable(n_partitions=n_partitions)
    governor.register_side(0, table)
    return governor, table


def fill(table, keys):
    for seq, key in enumerate(keys):
        table.insert(
            Tuple(SCHEMA, (key, seq), ts=0.0, validate=False), key, 0.0
        )


def candidates(governor, table):
    return [
        (governor._by_key[0], p) for p in table.partitions if p.memory_count
    ]


class TestSkewAwarePolicy:
    def test_registered(self):
        assert "skew-aware" in POLICIES
        assert isinstance(POLICIES["skew-aware"](), SkewAwarePolicy)

    def test_falls_back_to_largest_without_sketch(self):
        governor, table = make_governor()
        fill(table, [0] * 5 + [1])
        assert governor.sketch is None
        _, victim = governor.policy.select(candidates(governor, table), governor)
        assert victim is table.partition_for(0)

    def test_evicts_coldest_bucket_with_sketch(self):
        governor, table = make_governor()
        # Bucket(1) is larger but hot; bucket(2) is small and cold.
        fill(table, [1] * 5 + [2])
        sketch = FrequencySketch()
        sketch.observe(1, count=100)
        sketch.observe(2, count=1)
        governor.sketch = sketch
        _, victim = governor.policy.select(candidates(governor, table), governor)
        assert victim is table.partition_for(2)

    def test_heat_ties_break_on_size(self):
        governor, table = make_governor()
        fill(table, [1] * 5 + [2])  # neither key observed: both heat 0
        governor.sketch = FrequencySketch()
        _, victim = governor.policy.select(candidates(governor, table), governor)
        assert victim is table.partition_for(1)  # larger of the equally-cold
