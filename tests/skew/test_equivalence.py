"""The skew layer's equivalence guarantee.

Splits and coalesces happen at punctuation-aligned purge boundaries and
move memory entries between leaves of one base bucket only, so the
adaptive runs must reproduce the static run's result multiset and
punctuation stream exactly — on every seed, at every Zipf exponent,
with the governor attached or not.  The sharded hot-key variant
carries the same guarantee through replication.
"""

import contextlib

import pytest

from repro.core.config import PJoinConfig
from repro.experiments.harness import (
    governed,
    pjoin_factory,
    run_join_experiment,
    sharding,
    skewed,
)
from repro.memory.budget import GovernorSpec
from repro.skew import SkewSpec
from repro.workloads.generator import generate_workload

CONFIG = PJoinConfig(n_partitions=8, purge_threshold=1)


def zipf_workload(seed, exponent, tuples=1500):
    return generate_workload(
        n_tuples_per_stream=tuples,
        punct_spacing_a=40,
        punct_spacing_b=40,
        active_values=48,
        zipf_exponent=exponent,
        seed=seed,
    )


def run(workload, label, skew=None, shards=None, governor=None):
    with contextlib.ExitStack() as stack:
        if shards is not None:
            stack.enter_context(sharding(shards))
        if skew is not None:
            stack.enter_context(skewed(skew))
        if governor is not None:
            stack.enter_context(governed(governor))
        return run_join_experiment(
            pjoin_factory(CONFIG), workload, label=label, keep_items=True
        )


def signature(experiment_run):
    return (
        experiment_run.sink.result_multiset(),
        sorted((tuple(p.patterns), p.ts)
               for p in experiment_run.sink.punctuations),
    )


class TestAdaptiveEquivalence:
    @pytest.mark.parametrize("seed", [3, 7, 23])
    @pytest.mark.parametrize("exponent", [0.8, 1.4])
    def test_adaptive_matches_static_on_seeded_zipf(self, seed, exponent):
        workload = zipf_workload(seed, exponent)
        static = run(workload, "static")
        adaptive = run(workload, "adaptive", skew=SkewSpec())
        assert signature(adaptive) == signature(static)

    def test_restructuring_actually_happened(self):
        workload = zipf_workload(7, 1.6, tuples=2500)
        adaptive = run(workload, "adaptive", skew=SkewSpec())
        counters = adaptive.join.counters()
        assert counters["skew.splits"] > 0
        assert counters["skew.entries_moved"] > 0

    def test_split_reduces_charged_probe_time(self):
        workload = zipf_workload(7, 1.6, tuples=2500)
        static = run(workload, "static")
        adaptive = run(workload, "adaptive", skew=SkewSpec())
        assert adaptive.duration_ms < static.duration_ms

    def test_adaptive_under_governor_stays_equivalent(self):
        """Spilled (cold) buckets refuse restructure but never drift."""
        workload = zipf_workload(11, 1.4)
        spec = GovernorSpec(120.0, policy="skew-aware")
        static = run(workload, "static", governor=spec)
        adaptive = run(workload, "adaptive", skew=SkewSpec(), governor=spec)
        assert signature(adaptive) == signature(static)
        assert adaptive.join.counters()["governor.spills"] > 0


class TestShardedHotKeyEquivalence:
    @pytest.mark.parametrize("seed", [7, 19])
    def test_hot_key_replication_matches_unsharded(self, seed):
        workload = zipf_workload(seed, 1.4, tuples=2000)
        static = run(workload, "static")
        hot = run(
            workload, "hot", shards=4,
            skew=SkewSpec(hot_keys=True, adaptive=False),
        )
        assert hot.sink.result_multiset() == static.sink.result_multiset()
        router = hot.join.router.counters()
        assert router["hot_activations"] > 0
        assert router["replica_copies"] > 0

    def test_hot_key_replication_matches_plain_sharding(self):
        workload = zipf_workload(7, 1.4, tuples=2000)
        plain = run(workload, "plain", shards=4)
        hot = run(
            workload, "hot", shards=4,
            skew=SkewSpec(hot_keys=True, adaptive=False),
        )
        assert hot.sink.result_multiset() == plain.sink.result_multiset()


class TestDefaultPathByteIdentity:
    def test_no_skew_run_is_byte_identical(self):
        """skew=None must not change a single event or timestamp."""
        workload = generate_workload(
            n_tuples_per_stream=800, punct_spacing_a=30, punct_spacing_b=30,
            seed=5,
        )
        plain = run(workload, "plain")
        # An empty skewed() context (spec None) is the default path too.
        with skewed(None):
            nulled = run_join_experiment(
                pjoin_factory(CONFIG), workload, label="nulled",
                keep_items=True,
            )
        assert [(t.values, t.ts) for t in plain.sink.results] == \
            [(t.values, t.ts) for t in nulled.sink.results]
        assert plain.manifest["engine"] == nulled.manifest["engine"]
