"""HotKeyShardRouter unit tests against recording fake shards.

End-to-end equivalence lives in ``test_equivalence.py``; these tests
pin the router's protocol decisions in isolation: activation flushes
the build history as replicas, later build tuples broadcast, probe
tuples spread, punctuated keys never activate, and hot punctuations
broadcast un-narrowed with a full-cover alignment subscription.
"""

from repro.punctuations.patterns import Constant, WILDCARD
from repro.punctuations.punctuation import Punctuation
from repro.shard.merger import AlignmentLedger
from repro.shard.routing import shard_of
from repro.skew import HotKeyShardRouter, SkewSpec
from repro.skew.replica import HotKeyReplica
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema.of("key", "seq")
K = 3

SPEC = SkewSpec(
    hot_keys=True, adaptive=False,
    hot_key_share=0.5, hot_key_check_every=4, hot_key_min_total=8,
)


class FakeShard:
    def __init__(self):
        self.pushed = []

    def push(self, item, port=0):
        self.pushed.append((item, port))


def make_router(spec=SPEC):
    shards = [FakeShard() for _ in range(K)]
    ledger = AlignmentLedger()
    router = HotKeyShardRouter(
        shards, [0, 0], ["key", "key"], ledger, spec, name="router"
    )
    return router, shards, ledger


def tup(key, seq=0):
    return Tuple(SCHEMA, (key, seq), ts=0.0, validate=False)


def punct(key):
    return Punctuation(SCHEMA, [Constant(key), WILDCARD], ts=0.0)


def heat(router, key, n=12, port=1):
    for seq in range(n):
        router.push(tup(key, seq), port)


class TestActivation:
    def test_hot_build_history_replicates_to_non_home_shards(self):
        router, shards, _ = make_router()
        heat(router, "hot")
        assert router.hot_activations == 1
        assert "hot" in router.hot_keys
        home = shard_of("hot", K)
        for target, shard in enumerate(shards):
            replicas = [i for i, _p in shard.pushed
                        if isinstance(i, HotKeyReplica)]
            if target == home:
                assert not replicas  # home already holds the originals
            else:
                assert replicas  # flushed pre-activation history
                assert all(r.tup.values[0] == "hot" for r in replicas)
        assert router.replica_copies > 0

    def test_build_tuples_broadcast_after_activation(self):
        router, shards, _ = make_router()
        heat(router, "hot")
        marker = tup("hot", 99)
        router.push(marker, 1)
        assert all((marker, 1) in shard.pushed for shard in shards)
        assert router.hot_broadcast_tuples >= 1

    def test_probe_tuples_spread_round_robin_from_home(self):
        router, shards, _ = make_router()
        heat(router, "hot")
        markers = [tup("hot", 100 + turn) for turn in range(K)]
        for marker in markers:
            router.push(marker, 0)
        home = shard_of("hot", K)
        for turn, marker in enumerate(markers):
            target = (home + turn) % K
            assert (marker, 0) in shards[target].pushed
        assert router.hot_spread_tuples == K

    def test_cold_keys_keep_stock_routing(self):
        router, shards, _ = make_router()
        marker = tup("cold")
        router.push(marker, 0)
        assert (marker, 0) in shards[shard_of("cold", K)].pushed
        assert router.hot_activations == 0


class TestPunctuationGuards:
    def test_punctuated_key_never_activates(self):
        router, _, _ = make_router()
        router.push(punct("hot"), 0)
        heat(router, "hot")
        assert router.hot_activations == 0
        assert "hot" not in router.hot_keys

    def test_punctuation_drops_replica_buffer(self):
        router, shards, _ = make_router(
            SPEC.__class__(hot_keys=True, adaptive=False,
                           hot_key_min_total=10_000)
        )
        heat(router, "hot", n=6)  # buffered, far below activation
        router.push(punct("hot"), 1)
        assert "hot" not in router._replica_buffer
        assert not any(
            isinstance(item, HotKeyReplica)
            for shard in shards for item, _port in shard.pushed
        )

    def test_hot_punctuation_broadcasts_with_full_cover(self):
        router, shards, ledger = make_router()
        heat(router, "hot")
        p = punct("hot")
        router.push(p, 0)
        assert all((p, 0) in shard.pushed for shard in shards)
        assert router.hot_broadcast_punctuations == 1
        # One subscription expecting a piece from every shard.
        assert ledger.subscriptions_open == 1
        for shard in range(K - 1):
            assert ledger.settle(shard, p.patterns[0]) == (True, None)
        matched, original = ledger.settle(K - 1, p.patterns[0])
        assert matched and original == p.patterns[0]

    def test_hot_key_retires_once_both_ports_punctuate(self):
        router, _, _ = make_router()
        heat(router, "hot")
        router.push(punct("hot"), 0)
        assert "hot" in router.hot_keys  # build side still open
        router.push(punct("hot"), 1)
        assert "hot" not in router.hot_keys
        assert router.hot_deactivations == 1
