"""CLI surface of the skew layer: `repro skew` and the jobs fallback."""

import json

from repro.cli import main


class TestSkewCommand:
    def test_smoke_passes_and_prints_tables(self, capsys):
        code = main(["skew", "--tuples", "800", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive" in out and "sharded hot-key" in out
        assert "adaptive.splits" in out
        assert "hotkey.hot_activations" in out

    def test_variants_stay_equivalent(self, capsys):
        assert main(["skew", "--tuples", "800"]) == 0
        assert "MISMATCH" not in capsys.readouterr().out

    def test_single_shard_is_rejected(self, capsys):
        assert main(["skew", "--tuples", "200", "--shards", "1"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_check_fails_on_missing_golden(self, tmp_path, capsys):
        code = main(
            ["skew", "--tuples", "800", "--check", str(tmp_path)]
        )
        assert code == 1
        assert "missing golden" in capsys.readouterr().err

    def test_check_reports_drift_per_key(self, tmp_path, capsys):
        (tmp_path / "skew_smoke.json").write_text(
            json.dumps({"results": -1})
        )
        code = main(["skew", "--tuples", "800", "--check", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "drift in skew_smoke.results" in err
        assert "skew smoke FAILED" in err


class TestPlannerJobsFallback:
    def test_adaptive_planner_falls_back_to_serial(self, capsys, caplog):
        code = main(
            ["figures", "figure6", "--scale", "0.06",
             "--planner", "adaptive", "--jobs", "2"]
        )
        assert code == 0
        err = capsys.readouterr().err + caplog.text
        assert "falling back to a serial run" in err
        assert "--planner adaptive cannot fan out" in err

    def test_no_fastpath_still_hard_errors(self, capsys):
        code = main(
            ["figures", "figure6", "--scale", "0.06",
             "--no-fastpath", "--jobs", "2"]
        )
        assert code == 2
        assert "--no-fastpath" in capsys.readouterr().err


class TestGoldenGate:
    def test_default_parameters_match_committed_golden(self):
        """The committed golden matches a default-parameter run.

        This is the same gate CI's skew-smoke job runs; keeping it in
        the suite means drift is caught before a push, not after.
        """
        assert main(["skew", "--check", "tests/goldens"]) == 0
