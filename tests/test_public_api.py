"""Tests of the public API surface.

The top-level package is the contract downstream users code against:
every name in ``__all__`` must resolve, and the quickstart shown in the
package docstring must actually run.
"""

import doctest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_package_docstring_quickstart_runs():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_subpackage_alls_resolve():
    import repro.core
    import repro.operators
    import repro.punctuations
    import repro.workloads

    for module in (repro.core, repro.operators, repro.punctuations,
                   repro.workloads):
        for name in module.__all__:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ lists missing name {name!r}"
            )


def test_determinism_of_full_experiment():
    """Two identical experiment runs produce identical traces.

    This guards the stable-hash and seeded-RNG discipline: any use of
    process-salted hashing or unseeded randomness would break it.
    """
    from repro.core.config import PJoinConfig
    from repro.experiments.harness import pjoin_factory, run_join_experiment
    from repro.workloads.generator import generate_workload

    def run():
        workload = generate_workload(
            n_tuples_per_stream=800, punct_spacing_a=10, punct_spacing_b=20,
            seed=3,
        )
        result = run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=5)), workload
        )
        return (
            result.results,
            result.duration_ms,
            result.state_series.values,
            result.output_series.values,
        )

    assert run() == run()


def test_determinism_across_processes():
    """The same experiment yields identical numbers in a fresh process
    with a different hash seed — bucket placement must come from the
    stable hash, and randomness only from explicit seeds."""
    import os
    import subprocess
    import sys

    # The child must be able to import repro no matter how this process
    # found it (installed, or via PYTHONPATH=src): point PYTHONPATH at
    # the directory containing the package we actually imported.
    package_root = os.path.dirname(os.path.dirname(repro.__file__))

    snippet = (
        "from repro.core.config import PJoinConfig;"
        "from repro.experiments.harness import pjoin_factory, run_join_experiment;"
        "from repro.workloads.generator import generate_workload;"
        "w = generate_workload(n_tuples_per_stream=400, punct_spacing_a=10,"
        " punct_spacing_b=20, seed=3);"
        "r = run_join_experiment(pjoin_factory(PJoinConfig(purge_threshold=5)), w);"
        "print(r.results, round(r.duration_ms, 6), round(r.mean_state(), 6))"
    )
    outputs = set()
    for hash_seed in ("1", "271828"):
        proc = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": hash_seed,
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": package_root,
            },
            check=True,
        )
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"trace differs across processes: {outputs}"
