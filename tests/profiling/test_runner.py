"""Profiling presets, the layer-cost matrix, the --check gate, the CLI."""

import json

import pytest

from repro.errors import ConfigError
from repro.profiling.presets import (
    ALIASES,
    FEATURES,
    PROFILE_PRESETS,
    resolve_preset,
)
from repro.profiling.runner import (
    check_profile,
    layer_cost_matrix,
    main as profile_main,
    normalize_features,
    render_histograms,
    render_layer_matrix,
    render_layer_table,
    run_profile,
)

SCALE = 0.03  # 300 tuples/stream: fast enough for per-test runs


class TestPresets:
    def test_aliases_resolve(self):
        for alias, target in ALIASES.items():
            assert resolve_preset(alias).name == target

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            resolve_preset("nope")

    def test_every_preset_builds_workload_and_factory(self):
        for preset in PROFILE_PRESETS.values():
            workload = preset.workload(scale=0.01)
            assert workload is not None
            assert preset.factory() is not None

    def test_resilience_knob_is_pjoin_only(self):
        assert resolve_preset("fig5_pjoin").factory(resilience=True)
        with pytest.raises(ConfigError):
            resolve_preset("fig5_xjoin").factory(resilience=True)

    def test_non_pjoin_presets_exclude_resilience_from_grid(self):
        assert "resilience" not in resolve_preset("fig5_xjoin").features
        assert "resilience" in resolve_preset("fig5_pjoin").features


class TestNormalizeFeatures:
    def test_all_and_none(self):
        preset = resolve_preset("fig5_pjoin")
        assert normalize_features("all", preset) == list(FEATURES)
        assert normalize_features(None, preset) == list(FEATURES)
        assert normalize_features("none", preset) == []
        assert normalize_features("", preset) == []

    def test_subset_kept_in_grid_order(self):
        preset = resolve_preset("fig5_pjoin")
        assert normalize_features("shard,obs", preset) == ["obs", "shard"]

    def test_unknown_feature_rejected(self):
        with pytest.raises(ConfigError):
            normalize_features("warp", resolve_preset("fig5_pjoin"))

    def test_unsupported_feature_rejected(self):
        with pytest.raises(ConfigError):
            normalize_features("resilience", resolve_preset("fig5_shj"))


class TestRunProfile:
    def test_profiled_run_carries_snapshot(self):
        preset = resolve_preset("fig5_pjoin")
        measured = run_profile(preset, SCALE, ["obs"], profile=True)
        assert measured.wall_s > 0
        assert measured.events_per_s > 0
        snapshot = measured.run.profile
        assert snapshot is not None
        assert snapshot["layers"]["core"]["calls"] > 0
        assert snapshot["layers"]["obs"]["calls"] > 0
        assert set(measured.outcome()) == {"events", "results", "virtual_ms"}

    def test_unprofiled_run_has_no_snapshot(self):
        preset = resolve_preset("fig5_pjoin")
        measured = run_profile(preset, SCALE, [], profile=False)
        assert measured.profiler is None
        assert measured.run.profile is None

    def test_features_do_not_change_results(self):
        # Every feature layer must preserve the join's result count
        # (that is what makes the overhead comparison meaningful).
        preset = resolve_preset("fig5_pjoin")
        workload = preset.workload(SCALE)
        bare = run_profile(preset, SCALE, [], profile=False,
                           workload=workload)
        for feature in preset.features:
            measured = run_profile(preset, SCALE, [feature], profile=False,
                                   workload=workload)
            assert measured.outcome()["results"] == bare.outcome()["results"], \
                feature


class TestLayerCostMatrix:
    def test_matrix_schema(self):
        matrix = layer_cost_matrix("fig5_pjoin", scale=SCALE)
        preset = resolve_preset("fig5_pjoin")
        assert matrix["preset"] == "fig5_pjoin"
        assert set(matrix["variants"]) == {"none", "all", *preset.features}
        none = matrix["variants"]["none"]
        assert none["overhead_pct"] == 0.0
        for entry in matrix["variants"].values():
            assert {"features", "wall_s", "events_per_s", "events",
                    "results", "virtual_ms", "overhead_pct"} <= set(entry)
        assert json.loads(json.dumps(matrix)) == matrix

    def test_render_with_and_without_diff(self):
        matrix = layer_cost_matrix("fig5_shj", scale=SCALE)
        table = render_layer_matrix(matrix)
        assert "layer-cost matrix" in table and "none" in table
        diff = {"obs": {"delta_pct": 1.5}}
        with_diff = render_layer_matrix(matrix, diff=diff)
        assert "vs baseline" in with_diff
        assert "+1.5pp" in with_diff


class TestCheckGate:
    def test_check_passes_on_fig5(self):
        failures = check_profile(resolve_preset("fig5_pjoin"), SCALE,
                                 max_overhead=100.0)
        assert failures == []


class TestRendering:
    def test_layer_table_lists_every_layer(self):
        measured = run_profile(resolve_preset("fig5_pjoin"), SCALE, [])
        table = render_layer_table(measured.run.profile)
        for layer in ("core", "obs", "resilience", "governor", "shard",
                      "total"):
            assert layer in table

    def test_histogram_table(self):
        measured = run_profile(resolve_preset("fig5_pjoin"), SCALE, [])
        rendered = render_histograms(measured.run.profile)
        assert "result_latency_ms" in rendered
        assert "p99" in rendered


class TestProfileCli:
    def test_writes_report_and_exports(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        collapsed = tmp_path / "stacks.txt"
        speedscope = tmp_path / "speedscope.json"
        rc = profile_main([
            "fig5", "--scale", str(SCALE), "--out", str(out),
            "--collapsed", str(collapsed), "--speedscope", str(speedscope),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "profile: fig5_pjoin" in printed
        assert "core" in printed and "total" in printed
        report = json.loads(out.read_text())
        assert report["profile_format"] == 1
        assert report["preset"] == "fig5_pjoin"
        assert set(report["profile"]["layers"]) == {
            "core", "obs", "resilience", "governor", "shard"
        }
        # The manifest section is the unpolluted run manifest.
        assert "profile" not in report["manifest"]
        assert collapsed.read_text().strip()
        scope = json.loads(speedscope.read_text())
        assert scope["profiles"][0]["weights"]

    def test_check_flag(self, capsys):
        rc = profile_main([
            "fig5", "--scale", str(SCALE), "--check",
            "--max-overhead", "100",
        ])
        assert rc == 0
        assert "profile check passed" in capsys.readouterr().out

    def test_grid_flag(self, capsys):
        rc = profile_main(["fig5_shj", "--scale", str(SCALE), "--grid"])
        assert rc == 0
        assert "layer-cost matrix" in capsys.readouterr().out

    def test_unknown_preset_exits_2(self):
        assert profile_main(["not_a_preset"]) == 2

    def test_features_none(self, capsys):
        rc = profile_main(["fig5", "--scale", str(SCALE),
                           "--features", "none"])
        assert rc == 0
        assert "features none" in capsys.readouterr().out
