"""Flame-graph exports: collapsed stacks and speedscope JSON."""

import json

from repro.obs.profile import Profiler
from repro.profiling.stacks import (
    ROOT_FRAME,
    SPEEDSCOPE_SCHEMA,
    collapsed_stacks,
    save_collapsed,
    save_speedscope,
    to_speedscope,
)


class StepClock:
    def __init__(self, step=10):
        self.t = 0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def profiled_sample():
    prof = Profiler(clock=StepClock())
    prof.wrap(lambda: None, "join", "core")()
    prof.wrap(lambda: None, "join.router", "shard")()
    prof.wrap(lambda: None, "join", "core")()
    return prof


class TestCollapsedStacks:
    def test_line_format_and_weights(self):
        prof = profiled_sample()
        lines = collapsed_stacks(prof).strip().splitlines()
        assert len(lines) == 2  # two distinct sites
        total = 0
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            frames = stack.split(";")
            assert frames[0] == ROOT_FRAME
            assert len(frames) == 3
            total += int(value)
        assert total == prof.total_ns

    def test_hottest_site_first(self):
        prof = profiled_sample()
        first = collapsed_stacks(prof).splitlines()[0]
        assert ";join;core " in first  # called twice, so hottest

    def test_empty_profiler(self):
        assert collapsed_stacks(Profiler(clock=StepClock())) == ""

    def test_save(self, tmp_path):
        path = tmp_path / "stacks.txt"
        save_collapsed(profiled_sample(), path)
        assert path.read_text().endswith("\n")


class TestSpeedscope:
    def test_schema(self):
        prof = profiled_sample()
        doc = to_speedscope(prof, name="test")
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "nanoseconds"
        assert len(profile["samples"]) == len(profile["weights"]) == 2
        assert profile["endValue"] == sum(profile["weights"]) == prof.total_ns
        # Every sample's frame indices are valid.
        n_frames = len(doc["shared"]["frames"])
        for sample in profile["samples"]:
            assert all(0 <= index < n_frames for index in sample)
            assert sample[0] == 0  # rooted at the shared root frame

    def test_json_serializable(self, tmp_path):
        path = tmp_path / "profile.speedscope.json"
        save_speedscope(profiled_sample(), path)
        doc = json.loads(path.read_text())
        assert doc["profiles"][0]["weights"]
