"""Edge cases and error paths scattered across modules.

Small behaviours that matter in practice — error messages, degenerate
inputs, introspection helpers — collected in one place so each module's
main test file stays focused on its semantics.
"""

import pytest

from repro.errors import (
    ConfigError,
    OperatorError,
    PatternError,
    PunctuationError,
    ReproError,
    SchemaError,
    SimulationError,
    StorageError,
    WorkloadError,
)


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for cls in (
            SchemaError, PatternError, PunctuationError, SimulationError,
            OperatorError, ConfigError, StorageError, WorkloadError,
        ):
            assert issubclass(cls, ReproError)

    def test_one_except_catches_all(self):
        with pytest.raises(ReproError):
            raise PatternError("x")


class TestBinaryJoinHelpers:
    def test_other_side(self, engine, cheap_cost_model, ab_schemas):
        from repro.operators.shj import SymmetricHashJoin

        schema_a, schema_b = ab_schemas
        join = SymmetricHashJoin(
            engine, cheap_cost_model, schema_a, schema_b, "key", "key"
        )
        assert join.other(0) == 1
        assert join.other(1) == 0
        with pytest.raises(OperatorError):
            join.other(2)

    def test_out_schema_prefixes_clash(self, engine, cheap_cost_model,
                                       ab_schemas):
        from repro.operators.shj import SymmetricHashJoin

        schema_a, schema_b = ab_schemas
        join = SymmetricHashJoin(
            engine, cheap_cost_model, schema_a, schema_b, "key", "key"
        )
        assert "A.key" in join.out_schema.field_names
        assert "B.key" in join.out_schema.field_names


class TestOperatorIntrospection:
    def test_utilisation_zero_at_start(self, engine, cheap_cost_model):
        from repro.operators.sink import Sink

        sink = Sink(engine, cheap_cost_model)
        assert sink.utilisation() == 0.0

    def test_utilisation_capped_at_one(self, engine):
        from repro.operators.base import Operator
        from repro.sim.costs import CostModel
        from repro.tuples.schema import Schema
        from repro.tuples.tuple import Tuple

        class Heavy(Operator):
            def handle(self, item, port):
                return 100.0

        op = Heavy(engine, CostModel())
        op.push(Tuple(Schema.of("x"), (1,)))
        engine.run()
        assert op.utilisation() == 1.0

    def test_reprs_do_not_crash(self, engine, cheap_cost_model, ab_schemas):
        from repro.core.pjoin import PJoin
        from repro.operators.sink import Sink
        from repro.punctuations.store import PunctuationStore
        from repro.storage.hash_table import PartitionedHashTable

        schema_a, schema_b = ab_schemas
        objects = [
            engine,
            cheap_cost_model,
            Sink(engine, cheap_cost_model),
            PJoin(engine, cheap_cost_model, schema_a, schema_b, "key", "key"),
            PunctuationStore(schema_a, "key"),
            PartitionedHashTable(4),
        ]
        for obj in objects:
            assert repr(obj)


class TestPJoinStats:
    def test_stats_snapshot_keys(self, engine, cheap_cost_model, ab_schemas):
        from repro.core.pjoin import PJoin
        from repro.tuples.tuple import Tuple

        schema_a, schema_b = ab_schemas
        join = PJoin(engine, cheap_cost_model, schema_a, schema_b, "key", "key")
        join.push(Tuple(schema_a, (1, 0)), 0)
        engine.run()
        stats = join.stats()
        assert stats["tuples_in"] == 1
        assert stats["state_total"] == 1
        assert "events_dispatched" in stats


class TestSchemasInWorkloads:
    def test_generator_schemas_are_typed(self):
        from repro.workloads.generator import STREAM_A_SCHEMA

        assert STREAM_A_SCHEMA.fields[0].dtype is int

    def test_auction_schemas_join_compatible(self):
        from repro.workloads.auction import BID_SCHEMA, OPEN_SCHEMA

        assert OPEN_SCHEMA.index_of("item_id") == 0
        assert BID_SCHEMA.index_of("item_id") == 0


class TestTimerShutdown:
    def test_push_time_timer_dies_with_the_join(self, engine, cheap_cost_model,
                                                ab_schemas):
        """A finished join must not keep rearming its propagation timer,
        or the simulation would never drain."""
        from repro.core.config import PJoinConfig
        from repro.core.pjoin import PJoin
        from repro.operators.sink import Sink
        from repro.tuples.item import END_OF_STREAM

        schema_a, schema_b = ab_schemas
        join = PJoin(
            engine, cheap_cost_model, schema_a, schema_b, "key", "key",
            config=PJoinConfig(
                propagation_mode="push_time",
                propagate_time_threshold_ms=10.0,
            ),
        )
        join.connect(Sink(engine, cheap_cost_model))
        join.push(END_OF_STREAM, 0)
        join.push(END_OF_STREAM, 1)
        engine.run(max_events=100)  # would exceed this if the timer loops
        assert join.finished
