"""Unit tests for the stream-item taxonomy."""

from repro.punctuations.punctuation import Punctuation
from repro.tuples.item import END_OF_STREAM, EndOfStream, is_end_of_stream
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


def test_end_of_stream_is_singleton():
    assert EndOfStream() is END_OF_STREAM


def test_is_end_of_stream_on_marker():
    assert is_end_of_stream(END_OF_STREAM)


def test_is_end_of_stream_on_tuple_and_punctuation():
    schema = Schema.of("a")
    assert not is_end_of_stream(Tuple(schema, (1,)))
    assert not is_end_of_stream(Punctuation.on_field(schema, "a", 1))


def test_repr():
    assert repr(END_OF_STREAM) == "END_OF_STREAM"
