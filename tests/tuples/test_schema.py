"""Unit tests for schemas and fields."""

import pytest

from repro.errors import SchemaError
from repro.tuples.schema import Field, Schema


class TestField:
    def test_untyped_field_accepts_anything(self):
        field = Field("x")
        field.validate(1)
        field.validate("s")
        field.validate(None)

    def test_typed_field_accepts_matching_value(self):
        Field("x", int).validate(5)

    def test_typed_field_rejects_mismatch(self):
        with pytest.raises(SchemaError):
            Field("x", int).validate("five")

    def test_none_is_always_accepted(self):
        Field("x", int).validate(None)

    def test_bool_is_not_an_int(self):
        with pytest.raises(SchemaError):
            Field("x", int).validate(True)

    def test_int_is_acceptable_for_float(self):
        Field("x", float).validate(3)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("")

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            Field(3)

    def test_dtype_must_be_type(self):
        with pytest.raises(SchemaError):
            Field("x", "int")

    def test_equality_and_hash(self):
        assert Field("x", int) == Field("x", int)
        assert Field("x", int) != Field("x", str)
        assert hash(Field("x")) == hash(Field("x"))

    def test_repr_mentions_dtype(self):
        assert "int" in repr(Field("x", int))
        assert repr(Field("y")) == "Field('y')"


class TestSchema:
    def test_of_builds_untyped_schema(self):
        schema = Schema.of("a", "b", "c")
        assert schema.arity == 3
        assert schema.field_names == ("a", "b", "c")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_non_field_member_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a"])

    def test_index_of(self):
        schema = Schema.of("a", "b")
        assert schema.index_of("a") == 0
        assert schema.index_of("b") == 1

    def test_index_of_missing_field_raises_with_field_list(self):
        schema = Schema.of("a", "b")
        with pytest.raises(SchemaError, match="no field 'z'"):
            schema.index_of("z")

    def test_has_field(self):
        schema = Schema.of("a")
        assert schema.has_field("a")
        assert not schema.has_field("b")

    def test_validate_values_checks_arity(self):
        schema = Schema.of("a", "b")
        with pytest.raises(SchemaError, match="arity"):
            schema.validate_values((1,))

    def test_validate_values_checks_types(self):
        schema = Schema([Field("a", int)])
        with pytest.raises(SchemaError):
            schema.validate_values(("x",))

    def test_project_selects_and_reorders(self):
        schema = Schema.of("a", "b", "c")
        projected = schema.project(["c", "a"])
        assert projected.field_names == ("c", "a")

    def test_project_unknown_field_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").project(["z"])

    def test_concat_without_clashes(self):
        left = Schema.of("a", "b", name="L")
        right = Schema.of("c", name="R")
        joined = left.concat(right)
        assert joined.field_names == ("a", "b", "c")

    def test_concat_prefixes_clashing_names(self):
        left = Schema.of("key", "x", name="L")
        right = Schema.of("key", "y", name="R")
        joined = left.concat(right)
        assert joined.field_names == ("L.key", "x", "R.key", "y")

    def test_concat_anonymous_schemas_use_left_right(self):
        joined = Schema.of("k").concat(Schema.of("k"))
        assert joined.field_names == ("left.k", "right.k")

    def test_equality_ignores_name(self):
        assert Schema.of("a", name="X") == Schema.of("a", name="Y")

    def test_hashable(self):
        assert hash(Schema.of("a")) == hash(Schema.of("a"))

    def test_iteration_and_len(self):
        schema = Schema.of("a", "b")
        assert len(schema) == 2
        assert [f.name for f in schema] == ["a", "b"]
