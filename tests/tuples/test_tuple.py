"""Unit tests for stream tuples."""

import pytest

from repro.errors import SchemaError
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple, join_tuples


@pytest.fixture
def schema():
    return Schema([Field("key", int), Field("name", str)], name="S")


class TestTuple:
    def test_values_and_timestamp(self, schema):
        tup = Tuple(schema, (1, "a"), ts=3.5)
        assert tup.values == (1, "a")
        assert tup.ts == 3.5

    def test_value_of_by_name(self, schema):
        tup = Tuple(schema, (1, "a"))
        assert tup.value_of("name") == "a"

    def test_getitem_by_position_and_name(self, schema):
        tup = Tuple(schema, (1, "a"))
        assert tup[0] == 1
        assert tup["key"] == 1

    def test_validation_rejects_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            Tuple(schema, (1,))

    def test_validation_rejects_wrong_type(self, schema):
        with pytest.raises(SchemaError):
            Tuple(schema, ("one", "a"))

    def test_validation_can_be_skipped(self, schema):
        tup = Tuple(schema, ("one", "a"), validate=False)
        assert tup.values == ("one", "a")

    def test_with_ts_copies(self, schema):
        tup = Tuple(schema, (1, "a"), ts=1.0)
        other = tup.with_ts(9.0)
        assert other.ts == 9.0
        assert tup.ts == 1.0
        assert other.values == tup.values

    def test_as_dict(self, schema):
        assert Tuple(schema, (1, "a")).as_dict() == {"key": 1, "name": "a"}

    def test_key_distinguishes_timestamps(self, schema):
        assert Tuple(schema, (1, "a"), ts=1.0).key() != Tuple(
            schema, (1, "a"), ts=2.0
        ).key()

    def test_equality(self, schema):
        assert Tuple(schema, (1, "a"), ts=1.0) == Tuple(schema, (1, "a"), ts=1.0)
        assert Tuple(schema, (1, "a"), ts=1.0) != Tuple(schema, (2, "a"), ts=1.0)

    def test_hash_consistency(self, schema):
        a = Tuple(schema, (1, "a"), ts=1.0)
        b = Tuple(schema, (1, "a"), ts=1.0)
        assert hash(a) == hash(b)

    def test_iter_and_len(self, schema):
        tup = Tuple(schema, (1, "a"))
        assert list(tup) == [1, "a"]
        assert len(tup) == 2

    def test_repr_shows_fields(self, schema):
        assert "key=1" in repr(Tuple(schema, (1, "a")))


class TestJoinTuples:
    def test_concatenates_values_with_result_timestamp(self, schema):
        other = Schema([Field("key", int), Field("v", int)], name="T")
        out = schema.concat(other)
        left = Tuple(schema, (1, "a"), ts=1.0)
        right = Tuple(other, (1, 7), ts=2.0)
        result = join_tuples(left, right, out, ts=5.0)
        assert result.values == (1, "a", 1, 7)
        assert result.ts == 5.0
