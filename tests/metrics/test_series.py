"""Unit tests for time series."""

import pytest

from repro.metrics.series import TimeSeries


@pytest.fixture
def series():
    ts = TimeSeries("s")
    for t, v in [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0), (3.0, 20.0)]:
        ts.append(t, v)
    return ts


class TestAppend:
    def test_time_must_not_decrease(self, series):
        with pytest.raises(ValueError, match="decreases"):
            series.append(1.0, 5.0)

    def test_equal_times_allowed(self, series):
        series.append(3.0, 25.0)
        assert len(series) == 5


class TestStatistics:
    def test_mean_max_min_last(self, series):
        assert series.mean() == 12.5
        assert series.maximum() == 20.0
        assert series.minimum() == 0.0
        assert series.last() == 20.0

    def test_empty_series_statistics(self):
        empty = TimeSeries()
        assert empty.mean() == 0.0
        assert empty.maximum() == 0.0
        assert not empty

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.append(0.0, 0.0)
        ts.append(9.0, 0.0)  # value 0 for 9 time units
        ts.append(10.0, 100.0)  # value 0 for 1 more unit (then 100 at end)
        assert ts.time_weighted_mean() == 0.0

    def test_value_at(self, series):
        assert series.value_at(-1.0) == 0.0
        assert series.value_at(1.5) == 10.0
        assert series.value_at(99.0) == 20.0

    def test_window_mean(self, series):
        assert series.window_mean(1.0, 3.0) == 15.0
        assert series.window_mean(50.0, 60.0) == 0.0


class TestDerived:
    def test_rate_per_ms(self, series):
        rate = series.rate_per_ms()
        assert rate.values == [10.0, 10.0, 0.0]
        assert rate.times == [1.0, 2.0, 3.0]

    def test_rate_skips_zero_dt(self):
        ts = TimeSeries()
        ts.append(0.0, 0.0)
        ts.append(0.0, 5.0)
        ts.append(1.0, 10.0)
        # The zero-dt step is skipped; the last step differences against
        # the co-timed sample.
        assert ts.rate_per_ms().values == [5.0]

    def test_downsampled(self, series):
        down = series.downsampled(2)
        assert down.times == [0.0, 2.0]
        with pytest.raises(ValueError):
            series.downsampled(0)

    def test_points_iteration(self, series):
        assert list(series.points())[0] == (0.0, 0.0)
