"""Unit tests for the metrics sampler."""

import pytest

from repro.errors import SimulationError
from repro.metrics.collector import MetricsCollector


def test_samples_at_fixed_intervals(engine):
    collector = MetricsCollector(engine, interval_ms=10.0)
    counter = {"n": 0}
    collector.register_gauge("n", lambda: counter["n"])
    collector.start(horizon_ms=35.0)
    engine.schedule(15.0, lambda: counter.update(n=5))
    engine.run()
    series = collector["n"]
    assert series.times == [0.0, 10.0, 20.0, 30.0]
    assert series.values == [0.0, 0.0, 5.0, 5.0]


def test_interval_must_be_positive(engine):
    with pytest.raises(SimulationError):
        MetricsCollector(engine, interval_ms=0)


def test_duplicate_gauge_rejected(engine):
    collector = MetricsCollector(engine)
    collector.register_gauge("x", lambda: 0)
    with pytest.raises(SimulationError):
        collector.register_gauge("x", lambda: 1)


def test_register_after_start_rejected(engine):
    collector = MetricsCollector(engine)
    collector.start(horizon_ms=10.0)
    with pytest.raises(SimulationError):
        collector.register_gauge("x", lambda: 0)


def test_double_start_rejected(engine):
    collector = MetricsCollector(engine)
    collector.start(horizon_ms=10.0)
    with pytest.raises(SimulationError):
        collector.start(horizon_ms=10.0)


def test_multiple_gauges_sampled_together(engine):
    collector = MetricsCollector(engine, interval_ms=5.0)
    collector.register_gauge("a", lambda: 1)
    collector.register_gauge("b", lambda: 2)
    collector.start(horizon_ms=5.0)
    engine.run()
    assert collector["a"].values == [1.0, 1.0]
    assert collector["b"].values == [2.0, 2.0]
