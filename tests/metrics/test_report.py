"""Unit tests for the ASCII reporting helpers."""

from repro.metrics.report import (
    format_number,
    render_ascii_chart,
    render_table,
    series_summary_row,
)
from repro.metrics.series import TimeSeries


class TestFormatNumber:
    def test_integers_group_thousands(self):
        assert format_number(1234567) == "1,234,567"

    def test_large_floats_one_decimal(self):
        assert format_number(1234.5) == "1,234.5"

    def test_small_floats_more_precision(self):
        assert format_number(0.1234) == "0.1234"
        assert format_number(3.14159) == "3.14"


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["name", "count"], [["pjoin", 10], ["xjoin", 2000]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert "2,000" in lines[3]

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderAsciiChart:
    def test_bars_scale_to_global_max(self):
        big = TimeSeries("big")
        small = TimeSeries("small")
        for t in range(10):
            big.append(float(t), 100.0)
            small.append(float(t), 10.0)
        out = render_ascii_chart({"big": big, "small": small}, n_buckets=2, width=10)
        lines = out.splitlines()
        big_bars = [l for l in lines[lines.index("big:") + 1:][:2]]
        assert "##########" in big_bars[0]

    def test_empty_series_handled(self):
        out = render_ascii_chart({"x": TimeSeries("x")}, title="t")
        assert "(no data)" in out

    def test_title_included(self):
        ts = TimeSeries("s")
        ts.append(0.0, 1.0)
        ts.append(1.0, 1.0)
        assert "my title" in render_ascii_chart({"s": ts}, title="my title")


def test_series_summary_row():
    ts = TimeSeries("s")
    ts.append(0.0, 1.0)
    ts.append(1.0, 3.0)
    row = series_summary_row("s", ts)
    assert row[0] == "s"
    assert row[2] == 3.0
