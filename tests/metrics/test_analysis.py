"""Unit tests for the series-analysis helpers."""

import math
import random

import pytest

from repro.metrics.analysis import (
    first_crossover,
    growth_ratio,
    is_bounded,
    linear_fit,
    relative_level,
    steadiness,
)
from repro.metrics.series import TimeSeries


def series_of(points, name=""):
    ts = TimeSeries(name)
    for t, v in points:
        ts.append(t, v)
    return ts


class TestLinearFit:
    def test_exact_line(self):
        ts = series_of([(t, 3.0 * t + 2.0) for t in range(10)])
        slope, intercept = linear_fit(ts)
        assert slope == pytest.approx(3.0)
        assert intercept == pytest.approx(2.0)

    def test_flat_series(self):
        ts = series_of([(t, 7.0) for t in range(5)])
        slope, intercept = linear_fit(ts)
        assert slope == pytest.approx(0.0)
        assert intercept == pytest.approx(7.0)

    def test_single_point(self):
        assert linear_fit(series_of([(1.0, 5.0)])) == (0.0, 5.0)

    def test_noisy_line_recovers_slope(self):
        rng = random.Random(3)
        ts = series_of(
            [(t, 2.0 * t + rng.uniform(-1, 1)) for t in range(100)]
        )
        slope, _ = linear_fit(ts)
        assert slope == pytest.approx(2.0, abs=0.05)


class TestGrowth:
    def test_growing_series_has_high_ratio(self):
        ts = series_of([(t, float(t)) for t in range(100)])
        assert growth_ratio(ts) > 0.9
        assert not is_bounded(ts)

    def test_plateau_is_bounded(self):
        rng = random.Random(1)
        ts = series_of([(t, 50.0 + rng.uniform(-5, 5)) for t in range(100)])
        assert is_bounded(ts)

    def test_empty_series(self):
        assert growth_ratio(TimeSeries()) == 0.0


class TestSteadiness:
    def test_constant_rate_is_steady(self):
        ts = series_of([(t, 10.0) for t in range(50)])
        assert steadiness(ts) == pytest.approx(0.0)

    def test_collapsing_rate_is_unsteady(self):
        ts = series_of([(t, 100.0 / (1 + t)) for t in range(50)])
        assert steadiness(ts) > 0.5

    def test_warmup_window_is_ignored(self):
        points = [(0.0, 0.0), (1.0, 0.0)] + [(t, 10.0) for t in range(2, 50)]
        assert steadiness(series_of(points)) < 0.2


class TestCrossover:
    def test_detects_overtake(self):
        slow_steady = series_of([(t, 2.0 * t) for t in range(20)])
        fast_fading = series_of([(t, 10.0 + t * 0.5) for t in range(20)])
        crossing = first_crossover(slow_steady, fast_fading)
        assert crossing is not None
        assert 6.0 <= crossing <= 8.0

    def test_none_when_never_crossing(self):
        low = series_of([(t, 1.0) for t in range(10)])
        high = series_of([(t, 5.0) for t in range(10)])
        assert first_crossover(low, high) is None

    def test_after_parameter_skips_early_crossings(self):
        a = series_of([(0.0, 0.0), (1.0, 10.0), (2.0, 0.0), (3.0, 10.0)])
        b = series_of([(0.0, 5.0), (3.0, 5.0)])
        assert first_crossover(a, b) == 1.0
        assert first_crossover(a, b, after=1.5) == 3.0


class TestRelativeLevel:
    def test_ratio_of_means(self):
        a = series_of([(t, 10.0) for t in range(10)])
        b = series_of([(t, 40.0) for t in range(10)])
        assert relative_level(a, b) == pytest.approx(0.25)

    def test_zero_denominator_is_inf(self):
        a = series_of([(t, 10.0) for t in range(3)])
        b = series_of([(t, 0.0) for t in range(3)])
        assert relative_level(a, b) == math.inf


class TestOnRealExperiments:
    def test_figure5_shapes_via_analysis(self):
        """The analysis helpers agree with the paper on Figure 5's data:
        XJoin's state grows, PJoin's is bounded and far lower."""
        from repro.experiments.figures import figure5

        result = figure5(scale=0.3)
        pjoin = result.run("PJoin-1").state_series
        xjoin = result.run("XJoin").state_series
        assert is_bounded(pjoin)
        assert not is_bounded(xjoin)
        # The gap widens with run length; at 30% scale PJoin already
        # sits well below a quarter of XJoin's level.
        assert relative_level(pjoin, xjoin) < 0.25
