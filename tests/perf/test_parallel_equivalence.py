"""ParallelSweepRunner: serial and parallel runs are byte-identical.

The ISSUE contract: for any jobs count, the exported figure JSON — runs,
samples, per-operator counters, checks — must equal the serial export
byte for byte, with the ``jobs`` manifest stamp as the only difference.
"""

import json

import pytest

from repro.errors import PerfError
from repro.experiments.export import figure_to_dict
from repro.experiments.figures import ALL_FIGURES
from repro.perf.parallel import ParallelSweepRunner
from repro.resilience.chaos import run_chaos
from repro.resilience.policy import QUARANTINE

SCALE = 0.05


def _figure_bytes(result):
    """Canonical figure JSON with the ``jobs`` stamp stripped."""
    exported = figure_to_dict(result)
    for run in exported["runs"]:
        run["manifest"].pop("jobs", None)
    return json.dumps(exported, sort_keys=True)


@pytest.fixture(scope="module")
def serial_figures():
    return {
        name: _figure_bytes(ALL_FIGURES[name](scale=SCALE))
        for name in ("figure5", "figure8")
    }


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("name", ["figure5", "figure8"])
def test_parallel_figure_json_byte_identical(serial_figures, name, jobs):
    runner = ParallelSweepRunner(jobs)
    result = runner.run_experiment(name, scale=SCALE)
    for run in result.runs:
        assert run.manifest["jobs"] == jobs
    # (_figure_bytes pops the stamp, so the byte comparison goes last.)
    assert _figure_bytes(result) == serial_figures[name]


def test_parallel_counters_identical(serial_figures):
    # Per-operator counters, specifically: the deepest determinism probe.
    serial = json.loads(serial_figures["figure5"])
    parallel = figure_to_dict(
        ParallelSweepRunner(2).run_experiment("figure5", scale=SCALE)
    )
    for s_run, p_run in zip(serial["runs"], parallel["runs"]):
        assert s_run["manifest"]["counters"] == p_run["manifest"]["counters"]


def _chaos_fingerprint(run):
    manifest = dict(run.manifest)
    manifest.pop("jobs", None)
    return json.dumps(
        {"summary": run.summary, "manifest": manifest}, sort_keys=True
    )


@pytest.mark.parametrize("jobs", [1, 2])
def test_parallel_chaos_matches_serial(jobs):
    serial = [
        _chaos_fingerprint(run_chaos(name, policy=QUARANTINE))
        for name in ("gentle", "disorder")
    ]
    runner = ParallelSweepRunner(jobs)
    runs = runner.run_chaos_scenarios(["gentle", "disorder"], policy=QUARANTINE)
    assert [_chaos_fingerprint(run) for run in runs] == serial
    assert [run.manifest["jobs"] for run in runs] == [jobs, jobs]


def test_jobs_must_be_positive():
    with pytest.raises(PerfError):
        ParallelSweepRunner(0)


def test_unknown_experiment_rejected():
    with pytest.raises(PerfError):
        ParallelSweepRunner(2).run_experiment("not_a_figure")
