"""stable_hash: memoization and cross-process stability."""

import subprocess
import sys
from pathlib import Path

from repro.storage.hash_table import _HASH_CACHE, stable_hash

SRC = str(Path(__file__).resolve().parents[2] / "src")

# Values with a deterministic repr (unordered collections like
# frozenset are excluded: their repr order follows the per-process
# string hash, so they were never process-stable join values).
SAMPLE_VALUES = [
    "auction-4711",
    "",
    "a" * 100,
    (1, "two", 3.0),
    3.14159,
]


def test_int_fast_path_and_bool():
    assert stable_hash(42) == 42
    assert stable_hash(-7) == -7
    assert stable_hash(True) == 1
    assert stable_hash(False) == 0


def test_memoized_value_is_consistent():
    first = stable_hash("memo-check")
    assert "memo-check" in _HASH_CACHE
    assert stable_hash("memo-check") == first


def test_unhashable_values_fall_back_uncached():
    value = ["list", "is", "unhashable"]
    assert stable_hash(value) == stable_hash(list(value))


def test_hash_is_stable_across_processes():
    """Same values, different PYTHONHASHSEED, identical stable_hash.

    This is the property that keeps bucket assignment — and therefore
    every virtual-time measurement — identical between the serial path
    and ParallelSweepRunner's worker processes.
    """
    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.storage.hash_table import stable_hash\n"
        "values = ['auction-4711', '', 'a'*100, (1, 'two', 3.0), 3.14159]\n"
        "print([stable_hash(v) for v in values])\n"
    )
    outputs = []
    for seed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", script, SRC],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        )
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1]
    assert outputs[0] == str([stable_hash(v) for v in SAMPLE_VALUES])
