"""The benchmark-regression harness: report schema, gate, CLI."""

import json

import pytest

from repro.perf.bench import (
    BENCH_CASES,
    BENCH_FORMAT,
    _peak_rss_kb,
    baseline_payload,
    compare_reports,
    main as bench_main,
    render_report,
    run_bench,
    run_case,
)

REPORT_KEYS = {
    "bench_format", "rev", "created_unix", "quick", "scale", "repeat",
    "machine", "workloads",
}
CASE_KEYS = {"events", "results", "virtual_ms", "wall_s", "events_per_s",
             "peak_rss_kb"}


@pytest.fixture(scope="module")
def tiny_report():
    # chaos_disorder ignores scale and finishes in a few hundredths of a
    # second — ideal for schema tests.
    return run_bench(scale=1.0, cases=["chaos_disorder"])


class TestReportSchema:
    def test_top_level_schema(self, tiny_report):
        assert set(tiny_report) == REPORT_KEYS
        assert tiny_report["bench_format"] == BENCH_FORMAT
        machine = tiny_report["machine"]
        assert {"platform", "python", "implementation", "machine",
                "cpu_count"} <= set(machine)

    def test_case_schema(self, tiny_report):
        case = tiny_report["workloads"]["chaos_disorder"]
        assert set(case) == CASE_KEYS
        assert case["events"] > 0
        assert case["results"] > 0
        assert case["wall_s"] > 0
        assert case["events_per_s"] == pytest.approx(
            case["events"] / case["wall_s"]
        )

    def test_report_is_json_serialisable(self, tiny_report):
        assert json.loads(json.dumps(tiny_report)) == tiny_report

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            run_bench(cases=["nope"])

    def test_repeat_keeps_one_measurement(self):
        case = run_case(BENCH_CASES["chaos_disorder"], scale=1.0, repeat=2)
        assert set(case) == CASE_KEYS


def _case(wall_s, events=100, results=10):
    return {
        "wall_s": wall_s,
        "events": events,
        "results": results,
        "events_per_s": events / wall_s,
        "virtual_ms": 1.0,
        "peak_rss_kb": 1000,
    }


def _report(wall_s, scale=1.0, **case_kwargs):
    return {
        "rev": "test",
        "scale": scale,
        "workloads": {"fig5_pjoin": _case(wall_s, **case_kwargs)},
    }


class TestComparisonGate:
    def test_same_speed_passes(self):
        cmp = compare_reports(_report(1.0), _report(1.0))
        assert cmp["ok"]
        entry = cmp["workloads"]["fig5_pjoin"]
        assert entry["ok"]
        assert entry["wall_s_delta_pct"] == 0.0
        assert entry["events_match"] and entry["results_match"]

    def test_slowdown_beyond_gate_fails(self):
        cmp = compare_reports(_report(2.5), _report(1.0), max_slowdown=2.0)
        assert not cmp["ok"]
        assert not cmp["workloads"]["fig5_pjoin"]["ok"]

    def test_slowdown_within_gate_passes(self):
        cmp = compare_reports(_report(1.8), _report(1.0), max_slowdown=2.0)
        assert cmp["ok"]

    def test_scale_mismatch_is_an_error(self):
        cmp = compare_reports(_report(1.0, scale=0.5), _report(1.0))
        assert not cmp["ok"]
        assert "scale mismatch" in cmp["error"]

    def test_outcome_drift_is_flagged(self):
        cmp = compare_reports(_report(1.0, events=99), _report(1.0))
        entry = cmp["workloads"]["fig5_pjoin"]
        assert not entry["events_match"]
        assert "note" in entry

    def test_missing_baseline_case_is_tolerated(self):
        baseline = {"rev": "old", "scale": 1.0, "workloads": {}}
        cmp = compare_reports(_report(1.0), baseline)
        assert cmp["ok"]
        assert cmp["workloads"]["fig5_pjoin"]["note"] == "no baseline case"


class TestBenchCli:
    def test_writes_report_and_compares(self, tmp_path):
        out = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        rc = bench_main([
            "--cases", "chaos_disorder", "--out", str(out),
            "--baseline", str(baseline), "--update-baseline",
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert set(report) - {"comparison"} == REPORT_KEYS
        assert baseline.exists()
        # Committed baselines carry no host-specific metadata.
        baseline_report = json.loads(baseline.read_text())
        assert "machine" not in baseline_report
        assert "comparison" not in baseline_report
        # Second run now compares against the captured baseline.
        rc = bench_main([
            "--cases", "chaos_disorder", "--out", str(out),
            "--baseline", str(baseline),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["comparison"]["ok"]
        # Determinism cross-check: the rerun produced identical events.
        assert report["comparison"]["workloads"]["chaos_disorder"][
            "events_match"
        ]

    def test_committed_baseline_is_schema_valid(self):
        from pathlib import Path

        baseline_path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "bench_baseline.json"
        )
        baseline = json.loads(baseline_path.read_text())
        assert baseline["bench_format"] == BENCH_FORMAT
        assert set(BENCH_CASES) == set(baseline["workloads"])
        assert "machine" not in baseline
        for case in baseline["workloads"].values():
            assert CASE_KEYS <= set(case)


class TestBaselinePayload:
    def test_strips_machine_and_comparison(self, tiny_report):
        report = dict(tiny_report)
        report["comparison"] = {"ok": True}
        payload = baseline_payload(report)
        assert "machine" not in payload
        assert "comparison" not in payload
        assert payload["workloads"] == report["workloads"]
        assert payload["scale"] == report["scale"]

    def test_compare_ignores_machine(self, tiny_report):
        # A machine-less baseline (as committed) compares cleanly
        # against a full report from any host.
        comparison = compare_reports(tiny_report, baseline_payload(tiny_report))
        assert comparison["ok"]

    def test_render_handles_machineless_reports(self, tiny_report):
        rendered = render_report(baseline_payload(tiny_report))
        assert "bench @" in rendered

    def test_strips_layer_matrix(self, tiny_report):
        # Matrix numbers are host wall times — they would churn every
        # committed baseline for no gating value.
        report = dict(tiny_report)
        report["layer_matrix"] = {"preset": "fig5_pjoin", "variants": {}}
        assert "layer_matrix" not in baseline_payload(report)


class TestPeakRss:
    def test_current_platform_value(self):
        peak = _peak_rss_kb()
        # POSIX CI and dev machines report a positive KiB count; the
        # contract elsewhere is "int or None", never garbage.
        assert peak is None or (isinstance(peak, int) and peak > 0)

    def test_missing_resource_module_degrades_to_none(self, monkeypatch):
        import repro.perf.bench as bench

        monkeypatch.setattr(bench, "resource", None)
        assert _peak_rss_kb() is None

    def test_getrusage_failure_degrades_to_none(self, monkeypatch):
        import repro.perf.bench as bench

        class Broken:
            RUSAGE_SELF = 0

            @staticmethod
            def getrusage(_who):
                raise OSError("unsupported")

        monkeypatch.setattr(bench, "resource", Broken)
        assert _peak_rss_kb() is None

    def test_zero_ru_maxrss_degrades_to_none(self, monkeypatch):
        import repro.perf.bench as bench

        class Zero:
            RUSAGE_SELF = 0

            class _Usage:
                ru_maxrss = 0

            @staticmethod
            def getrusage(_who):
                return Zero._Usage()

        monkeypatch.setattr(bench, "resource", Zero)
        assert _peak_rss_kb() is None

    def test_report_serialises_none_rss(self, tiny_report, monkeypatch):
        import repro.perf.bench as bench

        monkeypatch.setattr(bench, "resource", None)
        case = run_case(BENCH_CASES["chaos_disorder"], scale=1.0)
        assert case["peak_rss_kb"] is None
        assert json.loads(json.dumps(case))["peak_rss_kb"] is None
        # render_report shows "-" instead of crashing on None.
        report = dict(tiny_report)
        report["workloads"] = {"chaos_disorder": case}
        assert "-" in render_report(report)


def _matrix(overheads, preset="fig5_pjoin"):
    return {
        "preset": preset,
        "scale": 1.0,
        "repeat": 1,
        "variants": {
            name: {
                "features": [] if name == "none" else [name],
                "wall_s": 1.0,
                "events_per_s": 100.0,
                "events": 100,
                "results": 10,
                "virtual_ms": 1.0,
                "overhead_pct": pct,
            }
            for name, pct in overheads.items()
        },
    }


class TestLayerMatrixDiff:
    def test_diff_present_when_both_reports_carry_matrix(self):
        current = _report(1.0)
        current["layer_matrix"] = _matrix({"none": 0.0, "obs": 5.0})
        baseline = _report(1.0)
        baseline["layer_matrix"] = _matrix({"none": 0.0, "obs": 2.0})
        cmp = compare_reports(current, baseline)
        assert cmp["ok"]  # informational, never gates
        assert cmp["layer_matrix"]["obs"]["delta_pct"] == 3.0
        assert cmp["layer_matrix"]["obs"]["baseline_overhead_pct"] == 2.0

    def test_old_format_baseline_without_matrix_is_graceful(self):
        current = _report(1.0)
        current["layer_matrix"] = _matrix({"none": 0.0, "obs": 5.0})
        cmp = compare_reports(current, _report(1.0))
        assert cmp["ok"]
        assert "layer_matrix" not in cmp

    def test_preset_mismatch_skips_diff(self):
        current = _report(1.0)
        current["layer_matrix"] = _matrix({"obs": 5.0})
        baseline = _report(1.0)
        baseline["layer_matrix"] = _matrix({"obs": 2.0}, preset="fig8_pjoin_lazy")
        assert "layer_matrix" not in compare_reports(current, baseline)

    def test_render_report_includes_matrix_and_diff_column(self):
        report = _report(1.0)
        report["layer_matrix"] = _matrix({"none": 0.0, "obs": 5.0})
        report["comparison"] = {
            "baseline_rev": "old", "max_slowdown": 2.0, "ok": True,
            "workloads": {},
            "layer_matrix": {
                "obs": {"overhead_pct": 5.0, "baseline_overhead_pct": 2.0,
                        "delta_pct": 3.0},
            },
        }
        rendered = render_report(report)
        assert "layer-cost matrix" in rendered
        assert "vs baseline" in rendered
        assert "+3.0pp" in rendered

    def test_render_report_matrix_without_comparison(self):
        report = _report(1.0)
        report["layer_matrix"] = _matrix({"none": 0.0})
        rendered = render_report(report)
        assert "layer-cost matrix" in rendered
