"""Equivalence suite for the fast-path build and micro-batched sources.

The performance work must be invisible in the results: a join built on
the specialized fast path, and an experiment run with any source batch
size, must produce **byte-identical** output — full run manifest
(engine event count, every per-operator counter), figure JSON, and the
collected result tuples — compared to the layered, item-at-a-time
execution.  This suite is that proof.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.errors import ContractViolationError
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.export import save_figure_json
from repro.experiments.harness import (
    batching,
    governed,
    pjoin_factory,
    run_join_experiment,
    tracing,
)
from repro.memory.budget import GovernorSpec
from repro.obs.trace import Tracer
from repro.operators import fastpath
from repro.profiling.presets import resolve_preset
from repro.query.plan import QueryPlan
from repro.resilience.policy import QUARANTINE
from repro.workloads.faults import (
    delay_punctuations,
    inject_duplicates,
    inject_punctuation_violation,
)
from repro.workloads.generator import GeneratedWorkload

PRESETS = ["fig5_pjoin", "fig5_xjoin", "fig5_shj", "fig8_pjoin_lazy"]
SCALE = 0.12


def run_preset(name, scale=SCALE, keep_items=False, batch_size=None):
    preset = resolve_preset(name)
    return run_join_experiment(
        preset.factory(),
        preset.workload(scale),
        label=name,
        keep_items=keep_items,
        batch_size=batch_size,
    )


def chaos_workload(scale=SCALE):
    """A contract-legal but hostile workload: duplicates + laggy puncts."""
    preset = resolve_preset("fig5_pjoin")
    wl = preset.workload(scale)
    chaos_a = inject_duplicates(wl.schedule_a, fraction=0.2, seed=11)
    chaos_b = delay_punctuations(wl.schedule_b, delay_ms=40.0)
    return GeneratedWorkload(wl.spec, chaos_a, chaos_b)


# ---------------------------------------------------------------------------
# Part A: fast-path builds equal the layered path
# ---------------------------------------------------------------------------


class TestFastPathEquivalence:
    @pytest.mark.parametrize("name", PRESETS)
    def test_manifest_identical(self, name):
        fast = run_preset(name)
        with fastpath.disabled():
            layered = run_preset(name)
        assert fastpath.has_fastpath(fast.join)
        assert not fastpath.has_fastpath(layered.join)
        assert fast.manifest == layered.manifest

    def test_results_identical_with_kept_items(self):
        fast = run_preset("fig5_pjoin", keep_items=True)
        with fastpath.disabled():
            layered = run_preset("fig5_pjoin", keep_items=True)
        assert [t.values for t in fast.sink.results] == [
            t.values for t in layered.sink.results
        ]
        assert [t.ts for t in fast.sink.results] == [
            t.ts for t in layered.sink.results
        ]

    def test_figure_json_byte_identical(self, tmp_path):
        fast_path = tmp_path / "fast.json"
        layered_path = tmp_path / "layered.json"
        save_figure_json(ALL_FIGURES["figure5"](scale=0.06), fast_path)
        with fastpath.disabled():
            save_figure_json(ALL_FIGURES["figure5"](scale=0.06), layered_path)
        assert fast_path.read_bytes() == layered_path.read_bytes()

    def test_chaos_workload_identical(self):
        wl = chaos_workload()
        factory = pjoin_factory(PJoinConfig(purge_threshold=2))
        fast = run_join_experiment(factory, wl, label="chaos")
        with fastpath.disabled():
            layered = run_join_experiment(factory, wl, label="chaos")
        assert fastpath.has_fastpath(fast.join)
        assert fast.manifest == layered.manifest


class TestFastPathBuildMatrix:
    """Which configurations specialize — and which must decline."""

    def test_default_build_installs_fast_path(self):
        run = run_preset("fig5_pjoin")
        handle = vars(run.join).get("handle")
        assert handle is not None and getattr(handle, "__repro_fastpath__", False)

    def test_tracer_declines_fast_path(self):
        preset = resolve_preset("fig5_pjoin")
        with tracing(Tracer()):
            run = run_join_experiment(preset.factory(), preset.workload(SCALE))
        assert not fastpath.has_fastpath(run.join)

    def test_governor_declines_fast_path(self):
        preset = resolve_preset("fig5_pjoin")
        with governed(GovernorSpec(10_000)):
            run = run_join_experiment(preset.factory(), preset.workload(SCALE))
        assert not fastpath.has_fastpath(run.join)

    def test_non_default_policy_declines_fast_path(self):
        preset = resolve_preset("fig5_pjoin")
        factory = pjoin_factory(PJoinConfig(fault_policy=QUARANTINE))
        run = run_join_experiment(factory, preset.workload(SCALE))
        assert not fastpath.has_fastpath(run.join)

    def test_strict_violation_still_raises_on_fast_path(self):
        preset = resolve_preset("fig5_pjoin")
        wl = preset.workload(SCALE)
        corrupted = inject_punctuation_violation(
            wl.schedule_a, wl.schemas[0], wl.join_fields[0]
        )
        bad = GeneratedWorkload(wl.spec, corrupted.schedule, wl.schedule_b)
        plan = QueryPlan()
        join = PJoin(
            plan.engine,
            plan.cost_model,
            wl.schemas[0],
            wl.schemas[1],
            wl.join_fields[0],
            wl.join_fields[1],
        )
        assert fastpath.has_fastpath(join)
        from repro.operators.sink import Sink

        join.connect(Sink(plan.engine, plan.cost_model))
        plan.add_source(bad.schedule_a, join, port=0, name="A")
        plan.add_source(bad.schedule_b, join, port=1, name="B")
        with pytest.raises(ContractViolationError):
            plan.run()
        assert join.validator.violations == 1


# ---------------------------------------------------------------------------
# Part B: micro-batched sources equal item-at-a-time sources
# ---------------------------------------------------------------------------


class TestBatchedEquivalence:
    @pytest.mark.parametrize("name", PRESETS)
    @pytest.mark.parametrize("batch", [2, 16, 64])
    def test_manifest_identical(self, name, batch):
        base = run_preset(name)
        batched = run_preset(name, batch_size=batch)
        assert base.manifest == batched.manifest

    def test_results_identical_with_kept_items(self):
        base = run_preset("fig5_pjoin", keep_items=True)
        batched = run_preset("fig5_pjoin", keep_items=True, batch_size=64)
        assert [t.values for t in base.sink.results] == [
            t.values for t in batched.sink.results
        ]
        assert [t.ts for t in base.sink.results] == [
            t.ts for t in batched.sink.results
        ]

    def test_batching_context_applies(self):
        base = run_preset("fig5_pjoin")
        with batching(32):
            ctx = run_preset("fig5_pjoin")
        assert base.manifest == ctx.manifest

    def test_figure_json_byte_identical_batched(self, tmp_path):
        base_path = tmp_path / "base.json"
        batched_path = tmp_path / "batched.json"
        save_figure_json(ALL_FIGURES["figure5"](scale=0.06), base_path)
        with batching(64):
            save_figure_json(ALL_FIGURES["figure5"](scale=0.06), batched_path)
        assert base_path.read_bytes() == batched_path.read_bytes()

    def test_chaos_workload_identical_batched(self):
        wl = chaos_workload()
        factory = pjoin_factory(PJoinConfig(purge_threshold=2))
        base = run_join_experiment(factory, wl, label="chaos")
        batched = run_join_experiment(factory, wl, label="chaos", batch_size=16)
        assert base.manifest == batched.manifest

    def test_batched_and_layered_combined(self):
        """Batched fast-path run == unbatched layered run."""
        base_manifest = None
        with fastpath.disabled():
            base_manifest = run_preset("fig5_pjoin").manifest
        combined = run_preset("fig5_pjoin", batch_size=64)
        assert combined.manifest == base_manifest


class TestBatchSizeProperty:
    """Hypothesis: ANY batch size replays the default execution."""

    _baseline = None

    @classmethod
    def baseline(cls):
        if cls._baseline is None:
            cls._baseline = run_preset("fig5_pjoin", scale=0.06).manifest
        return cls._baseline

    @settings(max_examples=12, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=500))
    def test_any_batch_size_is_byte_identical(self, batch):
        run = run_preset("fig5_pjoin", scale=0.06, batch_size=batch)
        assert run.manifest == self.baseline()


# ---------------------------------------------------------------------------
# Schema interning (rides along with the batched hot path)
# ---------------------------------------------------------------------------


class TestSchemaInterning:
    def test_repeated_builds_share_output_schema(self):
        first = run_preset("fig5_pjoin", scale=0.06)
        second = run_preset("fig5_pjoin", scale=0.06)
        assert first.join.out_schema is second.join.out_schema

    def test_manifest_json_stable_under_interning(self):
        run = run_preset("fig5_pjoin", scale=0.06)
        again = run_preset("fig5_pjoin", scale=0.06)
        assert json.dumps(run.manifest, sort_keys=True) == json.dumps(
            again.manifest, sort_keys=True
        )
