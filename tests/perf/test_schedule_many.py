"""SimulationEngine.schedule_many and its adopters keep event order."""

import pytest

from repro.errors import SimulationError
from repro.metrics.collector import MetricsCollector
from repro.operators.base import Operator
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.streams.source import StreamSource
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple

SCHEMA = Schema([Field("key", int)], name="S")


def _recorder(order, label):
    return lambda: order.append(label)


class TestScheduleMany:
    def test_order_identical_to_sequential_schedule_at(self):
        # Same event mix through schedule_at and schedule_many: the
        # execution orders must be identical, including FIFO ties.
        times = [5.0, 1.0, 5.0, 3.0, 1.0, 8.0, 3.0]
        serial = SimulationEngine()
        serial_order = []
        for i, t in enumerate(times):
            serial.schedule_at(t, _recorder(serial_order, (t, i)))
        serial.run()

        batched = SimulationEngine()
        batched_order = []
        batched.schedule_many(
            (t, _recorder(batched_order, (t, i))) for i, t in enumerate(times)
        )
        batched.run()
        assert batched_order == serial_order
        assert batched.events_executed == serial.events_executed == len(times)

    def test_batch_interleaves_with_existing_events_fifo(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(2.0, _recorder(order, "pre"))
        engine.schedule_many([(2.0, _recorder(order, "batch"))])
        engine.run()
        assert order == ["pre", "batch"]  # earlier seq wins the tie

    def test_small_batch_into_large_heap(self):
        # Exercises the push branch (batch much smaller than the heap).
        engine = SimulationEngine()
        order = []
        for i in range(100):
            engine.schedule_at(float(i), _recorder(order, i))
        engine.schedule_many([(0.5, _recorder(order, "x"))])
        engine.run()
        assert order[:2] == [0, "x"]
        assert len(order) == 101

    def test_past_event_raises_and_is_atomic(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        assert engine.now == 1.0
        with pytest.raises(SimulationError):
            engine.schedule_many([(2.0, lambda: None), (0.5, lambda: None)])
        assert engine.pending_events == 0  # nothing partially scheduled

    def test_empty_batch_is_a_no_op(self):
        engine = SimulationEngine()
        assert engine.schedule_many([]) == 0
        assert engine.pending_events == 0


class TestCollectorAdoption:
    def test_sample_times_unchanged(self):
        engine = SimulationEngine()
        collector = MetricsCollector(engine, interval_ms=10.0)
        seen = []
        collector.register_gauge("g", lambda: len(seen))
        collector.start(horizon_ms=45.0)
        engine.run()
        assert collector["g"].times == [0.0, 10.0, 20.0, 30.0, 40.0]


class _Recorder(Operator):
    """Zero-cost operator that logs every arriving item."""

    def __init__(self, engine):
        super().__init__(engine, CostModel().scaled(0.0), n_inputs=1)
        self.received = []

    def handle(self, item, port):
        self.received.append(item)
        return 0.0


class TestSourceDisorderFlushAdoption:
    def _run(self, schedule, slack):
        engine = SimulationEngine()
        sink = _Recorder(engine)
        source = StreamSource(
            engine, schedule, disorder_slack_ms=slack, name="src"
        )
        source.connect(sink)
        source.start()
        engine.run()
        return source, sink

    def test_eos_flush_order_unchanged(self):
        # Items arrive displaced; a large slack holds them all until
        # end-of-stream, where the batched flush must release them in
        # timestamp order — exactly what sequential delivery produced.
        items = {ts: Tuple(SCHEMA, (int(ts),), ts=ts) for ts in
                 (5.0, 1.0, 4.0, 2.0, 3.0)}
        schedule = [(10.0, items[5.0]), (10.0, items[1.0]),
                    (10.0, items[4.0]), (10.0, items[2.0]),
                    (10.0, items[3.0])]
        source, sink = self._run(schedule, slack=1000.0)
        assert [t.ts for t in sink.received] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert source.items_sent == 5
        assert source.exhausted
        assert sink.finished  # END_OF_STREAM followed the flush

    def test_flush_delivery_counts_match(self):
        items = [Tuple(SCHEMA, (i,), ts=float(i)) for i in range(20)]
        schedule = [(25.0, item) for item in reversed(items)]
        source, sink = self._run(schedule, slack=1000.0)
        assert source.items_sent == 20
        assert [t.ts for t in sink.received] == [float(i) for i in range(20)]

    def test_empty_buffer_skips_batching(self):
        source, sink = self._run([], slack=50.0)
        assert source.items_sent == 0
        assert sink.finished
