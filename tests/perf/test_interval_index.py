"""RangeIntervalIndex and the structured PunctuationStore fast paths."""

import pytest

from repro.perf.interval import RangeIntervalIndex
from repro.punctuations.patterns import (
    Constant,
    Range,
    WILDCARD,
    make_enumeration,
)
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore
from repro.tuples.schema import Field, Schema

SCHEMA = Schema([Field("key", int)], name="S")


def punct(pattern, ts=0.0):
    return Punctuation(SCHEMA, [pattern], ts=ts)


class TestRangeIntervalIndex:
    def test_point_query_hits_covering_range(self):
        index = RangeIntervalIndex()
        assert index.add(Range(10, 19), 0)
        assert index.add(Range(30, 39), 1)
        assert index.query(15) == [0]
        assert index.query(30) == [1]
        assert index.query(25) == []
        assert index.query(9) == []
        assert index.query(40) == []

    def test_exclusive_low_bound_falls_back_to_predecessor(self):
        index = RangeIntervalIndex()
        # [1, 5] and (5, 9]: the value 5 shares (5, 9]'s low bound but
        # only [1, 5] covers it — the two-candidate rule in query().
        index.add(Range(1, 5), 0)
        index.add(Range(5, 9, low_inclusive=False), 1)
        assert index.consistent
        assert index.query(5) == [0]
        assert index.query(6) == [1]

    def test_unbounded_sides(self):
        index = RangeIntervalIndex()
        index.add(Range(None, 0), 0)
        index.add(Range(100, None), 1)
        assert index.query(-1_000_000) == [0]
        assert index.query(1_000_000) == [1]
        assert index.query(50) == []

    def test_equal_patterns_share_one_interval(self):
        index = RangeIntervalIndex()
        index.add(Range(10, 19), 3)
        index.add(Range(10, 19), 7)
        assert index.consistent
        assert index.query(12) == [3, 7]
        assert len(index) == 2

    def test_remove_restores_empty(self):
        index = RangeIntervalIndex()
        index.add(Range(10, 19), 0)
        index.add(Range(20, 29), 1)
        assert index.remove(Range(10, 19), 0)
        assert index.query(15) == []
        assert index.query(25) == [1]
        assert not index.remove(Range(50, 60), 9)

    def test_overlap_degrades_to_linear_fallback(self):
        index = RangeIntervalIndex()
        index.add(Range(10, 19), 0)
        index.add(Range(15, 25), 1)  # prefix consistency violated
        assert not index.consistent
        assert index.query(17) is None  # caller must scan items()
        covering = [
            ids for pattern, ids in index.items() if pattern.matches(17)
        ]
        assert covering == [[0], [1]]

    def test_removal_of_offending_range_reenables_index(self):
        index = RangeIntervalIndex()
        index.add(Range(10, 19), 0)
        index.add(Range(15, 25), 1)  # overlap: degrade to linear scans
        assert not index.consistent
        assert index.query(12) is None
        index.remove(Range(15, 25), 1)
        # The survivors are disjoint again: fast path restored.
        assert index.consistent
        assert index.query(12) == [0]

    def test_removal_keeps_linear_path_while_overlap_remains(self):
        index = RangeIntervalIndex()
        index.add(Range(10, 19), 0)
        index.add(Range(15, 25), 1)
        index.add(Range(40, 49), 2)
        index.remove(Range(40, 49), 2)  # unrelated removal
        assert not index.consistent
        assert index.query(17) is None
        index.remove(Range(15, 25), 1)
        assert index.consistent

    def test_reprobe_only_on_last_pid_of_a_pattern(self):
        index = RangeIntervalIndex()
        index.add(Range(10, 19), 0)
        index.add(Range(15, 25), 1)
        index.add(Range(15, 25), 2)  # same pattern, second pid
        index.remove(Range(15, 25), 1)
        # The overlapping range is still live under pid 2.
        assert not index.consistent
        index.remove(Range(15, 25), 2)
        assert index.consistent

    def test_store_purge_restores_range_fast_path(self):
        store = PunctuationStore(SCHEMA, "key")
        pid_a = store.add(punct(Range(10, 19)))
        pid_bad = store.add(punct(Range(15, 25)))
        assert not store._ranges.consistent
        # Linear fallback stays correct while degraded.
        assert store.covering_pids(12) == [pid_a]
        store.remove(pid_bad)
        assert store._ranges.consistent
        assert store.covering_pids(12) == [pid_a]

    def test_non_numeric_bounds_are_refused(self):
        index = RangeIntervalIndex()
        assert not index.add(Range("a", "f"), 0)
        assert len(index) == 0

    def test_non_numeric_value_matches_nothing(self):
        index = RangeIntervalIndex()
        index.add(Range(10, 19), 0)
        assert index.query("15") == []

    def test_bool_values_compare_as_ints(self):
        index = RangeIntervalIndex()
        index.add(Range(0, 1), 0)
        assert index.query(True) == [0]
        assert index.query(False) == [0]


class TestStructuredStore:
    def test_range_punctuations_cover_and_order(self):
        store = PunctuationStore(SCHEMA, "key")
        pid_a = store.add(punct(Range(10, 19)))
        pid_b = store.add(punct(Range(30, 39)))
        assert store.covers_value(12)
        assert store.covers_value(39)
        assert not store.covers_value(25)
        assert store.first_covering(12) == (pid_a, store.get(pid_a))
        assert store.first_covering(35) == (pid_b, store.get(pid_b))
        assert store.first_covering(25) is None

    def test_enumeration_punctuations(self):
        store = PunctuationStore(SCHEMA, "key")
        pattern = make_enumeration({3, 5, 8})
        pid = store.add(punct(pattern))
        for value in (3, 5, 8):
            assert store.covers_value(value)
            assert store.covering_pids(value) == [pid]
        assert not store.covers_value(4)
        assert store.has_equal_join_pattern(make_enumeration({3, 5, 8}))
        assert not store.has_equal_join_pattern(make_enumeration({3, 5}))
        store.remove(pid)
        assert not store.covers_value(3)
        assert not store.has_equal_join_pattern(pattern)

    def test_wildcard_punctuation_covers_everything(self):
        store = PunctuationStore(SCHEMA, "key")
        pid = store.add(punct(WILDCARD))
        assert store.covers_value(0)
        assert store.covers_value(10**9)
        assert store.covering_pids(42) == [pid]
        assert store.has_equal_join_pattern(WILDCARD)
        store.remove(pid)
        assert not store.covers_value(0)

    def test_covering_pids_merges_all_structures_sorted(self):
        store = PunctuationStore(SCHEMA, "key")
        pid_range = store.add(punct(Range(10, 19)))
        pid_const = store.add(punct(Constant(12)))
        pid_wild = store.add(punct(WILDCARD))
        pids = store.covering_pids(12)
        assert pids == sorted([pid_range, pid_const, pid_wild])
        # first_covering follows arrival order across structures.
        assert store.first_covering(12)[0] == pid_range

    def test_range_duplicate_detection(self):
        store = PunctuationStore(SCHEMA, "key")
        store.add(punct(Range(10, 19)))
        assert store.has_equal_join_pattern(Range(10, 19))
        assert not store.has_equal_join_pattern(Range(10, 20))

    def test_removal_updates_range_index(self):
        store = PunctuationStore(SCHEMA, "key")
        pid = store.add(punct(Range(10, 19)))
        store.remove(pid)
        assert not store.covers_value(15)
        assert store.covering_pids(15) == []
        assert len(store) == 0

    def test_overlapping_ranges_still_correct(self):
        # Without the consistency checker the store accepts overlapping
        # ranges; the index degrades but answers stay right.
        store = PunctuationStore(SCHEMA, "key")
        pid_a = store.add(punct(Range(10, 19)))
        pid_b = store.add(punct(Range(15, 25)))
        assert store.covers_value(17)
        assert store.covering_pids(17) == [pid_a, pid_b]
        assert store.covering_pids(22) == [pid_b]
        assert store.first_covering(17)[0] == pid_a

    def test_constant_fast_path_unchanged(self):
        store = PunctuationStore(SCHEMA, "key")
        pid = store.add(punct(Constant(7)))
        assert store.covers_value(7)
        assert not store.covers_value(8)
        assert store.covering_pids(7) == [pid]
        assert store.has_equal_join_pattern(Constant(7))

    def test_prefix_consistency_checker_still_rejects(self):
        store = PunctuationStore(SCHEMA, "key", check_prefix_consistency=True)
        store.add(punct(Range(10, 19)))
        from repro.errors import PunctuationError

        with pytest.raises(PunctuationError):
            store.add(punct(Range(15, 25)))
